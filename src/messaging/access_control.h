#ifndef LIQUID_MESSAGING_ACCESS_CONTROL_H_
#define LIQUID_MESSAGING_ACCESS_CONTROL_H_

#include <map>
#include <set>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace liquid::messaging {

/// Operations subject to access control.
enum class AclOperation { kRead, kWrite };

/// Per-topic, per-principal access control (§2.1: "access control is
/// necessary to ensure that no faulty or misconfigured back-end systems can
/// compromise the data of other applications").
///
/// Principals are client ids. Enforcement is opt-in (off by default so
/// single-team deployments pay nothing); when on, the empty principal —
/// internal traffic such as replication and changelog restore — is always
/// allowed, and every external request needs an explicit Allow() grant.
class AccessController {
 public:
  AccessController() = default;

  AccessController(const AccessController&) = delete;
  AccessController& operator=(const AccessController&) = delete;

  void SetEnforcing(bool enforcing);
  bool enforcing() const;

  /// Grants `principal` the given operation on `topic` ("*" = all topics).
  void Allow(const std::string& principal, const std::string& topic,
             AclOperation op);

  /// Revokes a previous grant (no-op if absent).
  void Revoke(const std::string& principal, const std::string& topic,
              AclOperation op);

  /// OK when allowed; FailedPrecondition("access denied ...") otherwise.
  Status Check(const std::string& principal, const std::string& topic,
               AclOperation op) const;

  int64_t denials() const;

 private:
  struct Key {
    std::string principal;
    std::string topic;
    AclOperation op;
    bool operator<(const Key& other) const {
      if (principal != other.principal) return principal < other.principal;
      if (topic != other.topic) return topic < other.topic;
      return op < other.op;
    }
  };

  mutable Mutex mu_;
  bool enforcing_ GUARDED_BY(mu_) = false;
  std::set<Key> grants_ GUARDED_BY(mu_);
  mutable int64_t denials_ GUARDED_BY(mu_) = 0;
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_ACCESS_CONTROL_H_
