#include "messaging/group_coordinator.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "messaging/cluster.h"

namespace liquid::messaging {

GroupCoordinator::GroupCoordinator(Cluster* cluster, int64_t session_timeout_ms)
    : cluster_(cluster), session_timeout_ms_(session_timeout_ms) {}

Result<int64_t> GroupCoordinator::JoinGroup(
    const std::string& group, const std::string& member_id,
    const std::vector<std::string>& topics) {
  MutexLock lock(&mu_);
  Group& g = groups_[group];
  g.members[member_id] = topics;
  g.last_heartbeat_ms[member_id] = cluster_->clock()->NowMs();
  LIQUID_RETURN_NOT_OK(RebalanceLocked(&g));
  return g.generation;
}

Status GroupCoordinator::LeaveGroup(const std::string& group,
                                    const std::string& member_id) {
  MutexLock lock(&mu_);
  auto git = groups_.find(group);
  if (git == groups_.end()) return Status::NotFound("no such group: " + group);
  if (git->second.members.erase(member_id) == 0) {
    return Status::NotFound("no such member: " + member_id);
  }
  git->second.last_heartbeat_ms.erase(member_id);
  return RebalanceLocked(&git->second);
}

void GroupCoordinator::Heartbeat(const std::string& group,
                                 const std::string& member_id) {
  MutexLock lock(&mu_);
  auto git = groups_.find(group);
  if (git == groups_.end()) return;
  if (!git->second.members.count(member_id)) return;
  git->second.last_heartbeat_ms[member_id] = cluster_->clock()->NowMs();
}

int GroupCoordinator::EvictExpiredMembers() {
  if (session_timeout_ms_ <= 0) return 0;
  MutexLock lock(&mu_);
  const int64_t now = cluster_->clock()->NowMs();
  int evicted = 0;
  for (auto& [name, group] : groups_) {
    std::vector<std::string> dead;
    for (const auto& [member, last] : group.last_heartbeat_ms) {
      if (now - last > session_timeout_ms_) dead.push_back(member);
    }
    for (const auto& member : dead) {
      group.members.erase(member);
      group.last_heartbeat_ms.erase(member);
      ++evicted;
    }
    if (!dead.empty()) {
      // The sweep returns an eviction count, not a Status; a failed
      // rebalance is retried when the next join/leave/eviction triggers one.
      if (Status st = RebalanceLocked(&group); !st.ok()) {
        LIQUID_LOG_WARN << "group " << name
                        << ": rebalance after eviction failed: "
                        << st.ToString();
      }
    }
  }
  return evicted;
}

Status GroupCoordinator::RebalanceLocked(Group* group) {
  group->generation++;
  group->assignment.clear();
  if (group->members.empty()) return Status::OK();

  // Gather every partition of every subscribed topic, deterministically.
  std::set<std::string> topics;
  for (const auto& [member, subscribed] : group->members) {
    topics.insert(subscribed.begin(), subscribed.end());
  }
  std::vector<TopicPartition> all;
  for (const std::string& topic : topics) {
    auto partitions = cluster_->PartitionsOf(topic);
    if (!partitions.ok()) continue;  // Unknown topic: skipped until created.
    all.insert(all.end(), partitions->begin(), partitions->end());
  }
  std::sort(all.begin(), all.end());

  // Round-robin over members that subscribe to each partition's topic.
  std::vector<std::string> member_ids;
  for (const auto& [member, subscribed] : group->members) {
    member_ids.push_back(member);
  }
  size_t cursor = 0;
  for (const TopicPartition& tp : all) {
    // Find the next member (cyclically) subscribed to tp.topic.
    for (size_t tried = 0; tried < member_ids.size(); ++tried) {
      const std::string& candidate = member_ids[cursor % member_ids.size()];
      ++cursor;
      const auto& subscribed = group->members[candidate];
      if (std::find(subscribed.begin(), subscribed.end(), tp.topic) !=
          subscribed.end()) {
        group->assignment[candidate].push_back(tp);
        break;
      }
    }
  }
  return Status::OK();
}

Result<GroupAssignment> GroupCoordinator::GetAssignment(
    const std::string& group, const std::string& member_id) const {
  MutexLock lock(&mu_);
  auto git = groups_.find(group);
  if (git == groups_.end()) return Status::NotFound("no such group: " + group);
  if (!git->second.members.count(member_id)) {
    return Status::NotFound("no such member: " + member_id);
  }
  GroupAssignment out;
  out.generation = git->second.generation;
  auto ait = git->second.assignment.find(member_id);
  if (ait != git->second.assignment.end()) out.partitions = ait->second;
  return out;
}

int64_t GroupCoordinator::Generation(const std::string& group) const {
  MutexLock lock(&mu_);
  auto git = groups_.find(group);
  return git == groups_.end() ? 0 : git->second.generation;
}

int GroupCoordinator::MemberCount(const std::string& group) const {
  MutexLock lock(&mu_);
  auto git = groups_.find(group);
  return git == groups_.end() ? 0 : static_cast<int>(git->second.members.size());
}

}  // namespace liquid::messaging
