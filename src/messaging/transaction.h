#ifndef LIQUID_MESSAGING_TRANSACTION_H_
#define LIQUID_MESSAGING_TRANSACTION_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "messaging/metadata.h"
#include "messaging/offset_manager.h"

namespace liquid::messaging {

class Cluster;

/// Transaction coordinator implementing the "exactly-once semantics" the
/// paper lists as an ongoing effort (§4.3), in the style of Kafka's KIP-98:
///
///  - a transactional producer registers a stable `transactional_id` and gets
///    a producer id + epoch (re-registration bumps the epoch and aborts any
///    in-flight transaction of the zombie predecessor);
///  - partitions touched by the transaction are registered so the brokers
///    track the transactional offset range;
///  - consumed-offset commits can be added INTO the transaction, so
///    read-process-write cycles advance their input offsets atomically with
///    their output visibility;
///  - End(commit) writes commit/abort control markers to every touched
///    partition and applies (or discards) the buffered offset commits.
///
/// read_committed consumers only ever observe data of committed transactions.
///
/// Simplification vs Kafka: the coordinator state is in-memory (Kafka
/// persists it in the __transaction_state topic); End() is atomic because the
/// simulation is in-process. Aborted-range metadata lives on partition
/// leaders and is not yet replicated to followers.
class TransactionCoordinator {
 public:
  TransactionCoordinator(Cluster* cluster, OffsetManager* offsets);

  TransactionCoordinator(const TransactionCoordinator&) = delete;
  TransactionCoordinator& operator=(const TransactionCoordinator&) = delete;

  /// Registers (or re-registers) a transactional id; returns the producer id.
  /// Re-registration fences the previous incarnation: its epoch is bumped and
  /// its in-flight transaction is aborted.
  Result<int64_t> InitProducer(const std::string& txn_id);

  /// Starts a new transaction. FailedPrecondition if one is in flight.
  Status Begin(const std::string& txn_id);

  /// Registers a partition the transaction will write to (idempotent).
  Status AddPartition(const std::string& txn_id, const TopicPartition& tp);

  /// Buffers an input-offset commit to be applied atomically on commit.
  Status AddOffsets(const std::string& txn_id, const std::string& group,
                    const TopicPartition& tp, OffsetCommit commit);

  /// Ends the transaction: writes markers everywhere and, on commit, applies
  /// the buffered offset commits.
  Status End(const std::string& txn_id, bool commit);

  /// Producer id of a registered transactional id (NotFound otherwise).
  Result<int64_t> ProducerIdFor(const std::string& txn_id) const;

  bool InFlight(const std::string& txn_id) const;

 private:
  struct TxnState {
    int64_t pid = 0;
    int epoch = 0;
    bool in_flight = false;
    std::set<TopicPartition> partitions;
    struct PendingOffset {
      std::string group;
      TopicPartition tp;
      OffsetCommit commit;
    };
    std::vector<PendingOffset> pending_offsets;
  };

  Status EndLocked(TxnState* state, bool commit) REQUIRES(mu_);

  Cluster* cluster_;
  OffsetManager* offsets_;
  mutable Mutex mu_;
  std::map<std::string, TxnState> txns_ GUARDED_BY(mu_);
  // Disjoint from idempotent-producer ids.
  int64_t next_pid_ GUARDED_BY(mu_) = 1'000'000;
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_TRANSACTION_H_
