#ifndef LIQUID_MESSAGING_CONSUMER_H_
#define LIQUID_MESSAGING_CONSUMER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "messaging/group_coordinator.h"
#include "messaging/metadata.h"
#include "messaging/offset_manager.h"
#include "storage/record.h"

namespace liquid::messaging {

class Cluster;

/// A record delivered to a consumer, tagged with its origin partition.
struct ConsumerRecord {
  TopicPartition tp;
  storage::Record record;
};

/// Consumer tuning knobs; the group name also scopes committed offsets and
/// the `liquid.consumer.<group>.*` metrics.
struct ConsumerConfig {
  std::string group = "default";
  size_t fetch_max_bytes = 1 << 20;
  /// Where to start on a partition with no committed offset.
  bool start_from_earliest = true;
  /// Client id charged against broker-side byte-rate quotas (§4.5); empty
  /// means unquoted.
  std::string client_id;
  /// Hide transactional data until its transaction commits (exactly-once
  /// reads); aborted data and control markers are never delivered.
  bool read_committed = false;
  /// Unified retry discipline (DESIGN.md §7) for transient fetch failures
  /// inside one Poll: leader re-resolve plus short jittered backoff. Kept
  /// small — an exhausted budget just defers the partition to the next poll.
  RetryPolicy retry{.max_attempts = 3, .max_backoff_ms = 4};
};

/// Subscribing client of the messaging layer (§3.1). Pull-based: Poll()
/// fetches from the leaders of the partitions assigned to this member by the
/// group coordinator, tracking per-partition positions; Commit() checkpoints
/// positions (optionally with metadata annotations) in the offset manager.
class Consumer {
 public:
  Consumer(Cluster* cluster, OffsetManager* offsets,
           GroupCoordinator* coordinator, std::string member_id,
           ConsumerConfig config);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Joins the group, subscribing to `topics`; triggers a rebalance.
  Status Subscribe(const std::vector<std::string>& topics);

  /// Fetches up to ~max_records across assigned partitions (round-robin).
  /// Returns an empty vector when no new committed data exists.
  LIQUID_HOT_PATH
  Result<std::vector<ConsumerRecord>> Poll(size_t max_records);

  /// Checkpoints current positions for all assigned partitions.
  Status Commit();

  /// Checkpoints with metadata annotations (e.g. {"version","v2"}) — §4.2.
  Status CommitWithAnnotations(
      const std::map<std::string, std::string>& annotations);

  /// Moves the position of `tp` (must be assigned).
  Status Seek(const TopicPartition& tp, int64_t offset);

  /// Rewinds every assigned partition to the first record at/after ts_ms
  /// (metadata-based access, §3.1).
  Status SeekToTimestamp(int64_t ts_ms);

  /// Current position of `tp` (next offset to fetch).
  Result<int64_t> Position(const TopicPartition& tp) const;

  /// Snapshot of all positions (for transactional offset commits).
  std::map<TopicPartition, int64_t> Positions() const;

  /// Leaves the group WITHOUT committing (crash simulation / transactional
  /// jobs that commit offsets through the transaction coordinator).
  Status CloseWithoutCommit();

  std::vector<TopicPartition> Assignment() const;

  /// Leaves the group (triggers a rebalance for surviving members).
  Status Close();

  const std::string& member_id() const { return member_id_; }

 private:
  /// Re-fetches the assignment if the group generation moved; initializes
  /// positions of newly assigned partitions from committed offsets.
  Status RefreshAssignmentLocked() REQUIRES(mu_);

  Cluster* cluster_;
  OffsetManager* offsets_;
  GroupCoordinator* coordinator_;
  const std::string member_id_;
  const ConsumerConfig config_;

  // Cached handles into MetricsRegistry::Default()
  // ("liquid.consumer.<group>.*"), resolved once in the constructor; the
  // registry never erases entries so the pointers stay valid.
  Counter* records_counter_ = nullptr;
  Gauge* lag_gauge_ = nullptr;
  Histogram* e2e_latency_us_ = nullptr;
  RetryMetrics retry_metrics_{};

  mutable Mutex mu_;
  // Live per-partition lag gauges ("...lag.<topic>-<p>") plus the last
  // observed lag values, so the group-total gauge can be recomputed as the
  // sum over everything this member has seen.
  std::map<TopicPartition, Gauge*> partition_lag_gauges_ GUARDED_BY(mu_);
  std::map<TopicPartition, int64_t> partition_lag_ GUARDED_BY(mu_);
  std::vector<std::string> topics_ GUARDED_BY(mu_);
  int64_t generation_ GUARDED_BY(mu_) = -1;
  std::vector<TopicPartition> assignment_ GUARDED_BY(mu_);
  std::map<TopicPartition, int64_t> positions_ GUARDED_BY(mu_);
  // Round-robin over assigned partitions.
  size_t poll_cursor_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_CONSUMER_H_
