#ifndef LIQUID_MESSAGING_ADMIN_H_
#define LIQUID_MESSAGING_ADMIN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "messaging/metadata.h"
#include "messaging/offset_manager.h"

namespace liquid::messaging {

class Cluster;

/// Cluster-wide view for operators ("operated as a service, e.g. identifying
/// misbehaving applications or deciding which data is requested more for
/// load-balancing purposes", §3.1).
struct ClusterDescription {
  int controller_id = -1;
  std::vector<int> alive_brokers;
  std::vector<int> dead_brokers;
  int topics = 0;
  int partitions = 0;
  int offline_partitions = 0;
  int under_replicated_partitions = 0;  // ISR smaller than replica set.
};

/// Per-partition consumption lag of one group.
struct PartitionLag {
  TopicPartition tp;
  int64_t committed_offset = -1;  // -1: never committed.
  int64_t high_watermark = 0;
  int64_t lag = 0;  // HW - committed (or HW if never committed).
};

/// Read-only administrative operations over a running cluster, plus the one
/// operational write every real deployment needs: partition reassignment
/// (moving replicas between brokers for load balancing / decommissioning,
/// §4.4 "partitions are load-balanced across all available clusters").
class Admin {
 public:
  Admin(Cluster* cluster, OffsetManager* offsets);

  ClusterDescription DescribeCluster() const;

  /// All partition states of a topic.
  Result<std::vector<PartitionState>> DescribeTopic(const std::string& topic) const;

  /// Lag of `group` over every partition of `topic`.
  Result<std::vector<PartitionLag>> ConsumerLag(const std::string& group,
                                                const std::string& topic) const;

  /// Moves `tp` to `new_replicas`: new replicas become followers and catch
  /// up via replication; once in sync the leader is switched into the new
  /// set and old replicas are dropped. Synchronous (drives the catch-up).
  Status ReassignPartition(const TopicPartition& tp,
                           const std::vector<int>& new_replicas);

  /// Moves all leaderships and replicas off `broker_id` (decommission
  /// preparation), spreading them over the remaining alive brokers.
  Status DrainBroker(int broker_id);

 private:
  Cluster* cluster_;
  OffsetManager* offsets_;
  /// Unified retry discipline (DESIGN.md §7): a reassignment issued while a
  /// partition is mid-election waits the election out with jittered backoff
  /// instead of failing on the first Unavailable. Admin operations are rare
  /// and human-invoked, so the budget is more patient than the clients'.
  const RetryPolicy retry_policy_{.max_attempts = 8, .max_backoff_ms = 32};
  const RetryMetrics retry_metrics_ = RetryMetrics::Create("liquid.admin.");
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_ADMIN_H_
