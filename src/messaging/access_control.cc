#include "messaging/access_control.h"

namespace liquid::messaging {

void AccessController::SetEnforcing(bool enforcing) {
  MutexLock lock(&mu_);
  enforcing_ = enforcing;
}

bool AccessController::enforcing() const {
  MutexLock lock(&mu_);
  return enforcing_;
}

void AccessController::Allow(const std::string& principal,
                             const std::string& topic, AclOperation op) {
  MutexLock lock(&mu_);
  grants_.insert(Key{principal, topic, op});
}

void AccessController::Revoke(const std::string& principal,
                              const std::string& topic, AclOperation op) {
  MutexLock lock(&mu_);
  grants_.erase(Key{principal, topic, op});
}

Status AccessController::Check(const std::string& principal,
                               const std::string& topic,
                               AclOperation op) const {
  MutexLock lock(&mu_);
  if (!enforcing_) return Status::OK();
  if (principal.empty()) return Status::OK();  // Internal traffic.
  if (grants_.count(Key{principal, topic, op}) ||
      grants_.count(Key{principal, "*", op})) {
    return Status::OK();
  }
  ++denials_;
  return Status::FailedPrecondition(
      "access denied: principal '" + principal + "' may not " +
      (op == AclOperation::kRead ? "read" : "write") + " topic '" + topic +
      "'");
}

int64_t AccessController::denials() const {
  MutexLock lock(&mu_);
  return denials_;
}

}  // namespace liquid::messaging
