#ifndef LIQUID_MESSAGING_CONTROLLER_H_
#define LIQUID_MESSAGING_CONTROLLER_H_

#include <atomic>
#include <memory>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "messaging/metadata.h"

namespace liquid::messaging {

class Broker;
class Cluster;

/// The controller role (§4.3): exactly one broker wins the /controller
/// election and reacts to broker membership changes by re-electing partition
/// leaders from each partition's ISR ("after a broker failure, a re-election
/// mechanism chooses a new leader from the set of ISRs").
class Controller {
 public:
  Controller(Cluster* cluster, Broker* self);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Arms the membership watch and runs a full election pass (the new
  /// controller may be taking over after a failure).
  Status Start();

  /// Re-elects leaders for every partition whose leader is not alive and
  /// brings restarted replicas back as followers.
  Status ElectLeaders() EXCLUDES(mu_);

 private:
  void ArmMembershipWatch();
  void OnMembershipChange();

  Cluster* cluster_;
  Broker* self_;
  Mutex mu_;  // Serializes election passes.
  // Watch callbacks registered with the coordination service can outlive this
  // object; they hold the token and bail out once it reads false.
  std::shared_ptr<std::atomic<bool>> alive_token_;
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_CONTROLLER_H_
