#include "messaging/metadata.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace liquid::messaging {

namespace {

std::string JoinInts(const std::vector<int>& values) {
  std::ostringstream out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out << ',';
    out << values[i];
  }
  return out.str();
}

Result<std::vector<int>> SplitInts(const std::string& text) {
  std::vector<int> out;
  if (text.empty()) return out;
  out.reserve(static_cast<size_t>(
                  std::count(text.begin(), text.end(), ',')) + 1);
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) return Status::Corruption("empty int in list");
    out.push_back(std::atoi(item.c_str()));
  }
  return out;
}

}  // namespace

std::string PartitionState::Serialize() const {
  std::ostringstream out;
  out << leader << ';' << leader_epoch << ';' << JoinInts(replicas) << ';'
      << JoinInts(isr);
  return out.str();
}

Result<PartitionState> PartitionState::Parse(const std::string& data) {
  std::istringstream in(data);
  std::string leader_s, epoch_s, replicas_s, isr_s;
  if (!std::getline(in, leader_s, ';') || !std::getline(in, epoch_s, ';') ||
      !std::getline(in, replicas_s, ';')) {
    return Status::Corruption("bad partition state: " + data);
  }
  std::getline(in, isr_s, ';');  // May legitimately be empty.
  PartitionState state;
  state.leader = std::atoi(leader_s.c_str());
  state.leader_epoch = std::atoi(epoch_s.c_str());
  LIQUID_ASSIGN_OR_RETURN(state.replicas, SplitInts(replicas_s));
  LIQUID_ASSIGN_OR_RETURN(state.isr, SplitInts(isr_s));
  return state;
}

}  // namespace liquid::messaging
