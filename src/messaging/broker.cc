#include "messaging/broker.h"

#include <algorithm>
#include <optional>

#include "common/coding.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/trace.h"
#include "messaging/cluster.h"
#include "messaging/controller.h"

namespace liquid::messaging {

namespace {

std::string LogPrefix(const TopicPartition& tp) { return tp.ToString() + "/"; }

std::string HwCheckpointName(const TopicPartition& tp) {
  return tp.ToString() + ".hw";
}

std::string EpochCacheName(const TopicPartition& tp) {
  return tp.ToString() + ".epochs";
}

bool Contains(const std::vector<int>& v, int x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

}  // namespace

Broker::Broker(int id, Cluster* cluster, storage::Disk* disk, Clock* clock,
               BrokerConfig config)
    : id_(id),
      cluster_(cluster),
      disk_(disk),
      clock_(clock),
      config_(config),
      page_cache_(
          std::make_unique<storage::PageCache>(config_.page_cache, clock)),
      quotas_(clock) {
  // Hot-path handles into the process-wide registry, resolved once here:
  // registry entries are never erased, so the pointers stay valid and the
  // produce/fetch paths skip the name lookup entirely.
  MetricsRegistry* global = MetricsRegistry::Default();
  const std::string prefix = "liquid.broker." + std::to_string(id_) + ".";
  produce_records_ = global->GetCounter(prefix + "produce_records");
  produce_bytes_ = global->GetCounter(prefix + "produce_bytes");
  fetch_records_ = global->GetCounter(prefix + "fetch_records");
  replicated_records_ = global->GetCounter(prefix + "replicated_records");
  produce_us_ = global->GetHistogram(prefix + "produce_us");
  fetch_us_ = global->GetHistogram(prefix + "fetch_us");
  produce_lock_wait_us_ = global->GetHistogram(prefix + "produce_lock_wait_us");
  broker_produce_records_ = metrics_.GetCounter("produce.records");
  broker_fetch_records_ = metrics_.GetCounter("fetch.records");
  quota_produce_throttles_ = metrics_.GetCounter("quota.produce_throttles");
  quota_fetch_throttles_ = metrics_.GetCounter("quota.fetch_throttles");
  produce_duplicates_dropped_ =
      metrics_.GetCounter("produce.duplicates_dropped");
  isr_shrinks_ = metrics_.GetCounter("isr.shrinks");
  isr_expands_ = metrics_.GetCounter("isr.expands");
}

Broker::~Broker() = default;

Status Broker::Start() {
  // Chaos surface: a broker that cannot reach the coordination service at
  // startup (restart churn under coordinator flakiness).
  LIQUID_FAULT_POINT("broker.start.session");
  // Session creation talks to the coordination service, so it must not run
  // under map_mu_ (section 5a): create the session first, publish it under
  // the lock, and release it again on the already-started path.
  const int64_t session = cluster_->coord()->CreateSession();
  bool already_started = false;
  {
    WriterMutexLock lock(&map_mu_);
    if (alive_) {
      already_started = true;
    } else {
      alive_ = true;
      session_id_ = session;
    }
  }
  if (already_started) {
    cluster_->coord()->CloseSession(session);
    return Status::FailedPrecondition("broker already started");
  }
  auto created = cluster_->coord()->Create(session, paths::Broker(id_),
                                           std::to_string(id_),
                                           coord::NodeKind::kEphemeral);
  if (!created.ok()) return created.status();

  // Contend for the controller role; the winner handles broker failures.
  // Contending may elect synchronously, and election walks the whole cluster,
  // so it cannot run under map_mu_ — the callback takes the lock itself.
  auto election = std::make_unique<coord::LeaderElection>(
      cluster_->coord(), paths::Controller(), std::to_string(id_), session);
  election->Contend([this] {
    std::shared_ptr<Controller> controller;
    {
      WriterMutexLock lock(&map_mu_);
      if (!alive_) return;
      controller_ = std::make_shared<Controller>(cluster_, this);
      controller = controller_;
    }
    // Outside map_mu_: Start() elects leaders across every broker. The local
    // shared_ptr keeps the controller alive if Stop() resets the member.
    Status st = controller->Start();
    if (!st.ok()) {
      LIQUID_LOG_ERROR << "controller start failed on broker " << id_ << ": "
                       << st.ToString();
    }
  });
  {
    WriterMutexLock lock(&map_mu_);
    // If Stop() raced in, dropping `election` here resigns immediately.
    if (alive_) election_ = std::move(election);
  }
  return Status::OK();
}

void Broker::Stop() {
  int64_t session;
  {
    WriterMutexLock lock(&map_mu_);
    if (!alive_) return;
    alive_ = false;
    session = session_id_;
    controller_.reset();
    election_.reset();
  }
  // Outside the lock: expiry fires watches (controller failover, election).
  cluster_->coord()->ExpireSession(session);
}

bool Broker::alive() const {
  ReaderMutexLock lock(&map_mu_);
  return alive_;
}

bool Broker::IsController() const {
  ReaderMutexLock lock(&map_mu_);
  return controller_ != nullptr;
}

Result<Broker::Replica*> Broker::FindReplicaShared(const TopicPartition& tp) {
  if (!alive_) return Status::Unavailable("broker down: " + std::to_string(id_));
  auto it = replicas_.find(tp);
  if (it == replicas_.end()) {
    return Status::NotFound("replica not hosted: " + tp.ToString());
  }
  return &it->second;
}

Status Broker::EnsureLogLocked(const TopicPartition& tp, Replica* replica) {
  if (replica->log != nullptr) return Status::OK();
  auto log = storage::Log::Open(disk_, page_cache_.get(), LogPrefix(tp),
                                replica->config.log, clock_);
  if (!log.ok()) return log.status();
  replica->log = std::move(log).value();
  replica->append_records = MetricsRegistry::Default()->GetCounter(
      "liquid.broker." + std::to_string(id_) + ".partition." + tp.ToString() +
      ".append_records");
  LIQUID_RETURN_NOT_OK(LoadHighWatermarkLocked(tp, replica));
  return LoadEpochCacheLocked(tp, replica);
}

Status Broker::LoadHighWatermarkLocked(const TopicPartition& tp,
                                       Replica* replica) {
  const std::string name = HwCheckpointName(tp);
  if (!disk_->Exists(name)) {
    replica->high_watermark = replica->log->start_offset();
    return Status::OK();
  }
  auto file = disk_->OpenOrCreate(name);
  if (!file.ok()) return file.status();
  std::string bytes;
  LIQUID_RETURN_NOT_OK((*file)->ReadAt(0, 8, &bytes));
  if (bytes.size() == 8) {
    replica->high_watermark =
        static_cast<int64_t>(DecodeFixed64(bytes.data()));
    replica->high_watermark =
        std::min(replica->high_watermark, replica->log->end_offset());
  }
  return Status::OK();
}

void Broker::StoreHighWatermarkLocked(const TopicPartition& tp,
                                      Replica* replica) {
  auto write = [&]() -> Status {
    auto file = disk_->OpenOrCreate(HwCheckpointName(tp));
    if (!file.ok()) return file.status();
    std::string bytes;
    PutFixed64(&bytes, static_cast<uint64_t>(replica->high_watermark));
    LIQUID_RETURN_NOT_OK((*file)->Truncate(0));
    return (*file)->Append(bytes);
  };
  // Checkpoint stores are write-behind recovery hints: a failed store never
  // affects in-memory correctness, and every store rewrites the full value,
  // so the next successful one self-heals. Worst case a restart recovers
  // from an older HW and re-fetches. Hence: log, don't fail the caller.
  if (const Status st = write(); !st.ok()) {
    LIQUID_LOG_WARN << "broker " << id_ << ": hw checkpoint store failed for "
                    << tp.ToString() << ": " << st.ToString();
  }
}

Status Broker::LoadEpochCacheLocked(const TopicPartition& tp,
                                    Replica* replica) {
  replica->epoch_cache.clear();
  const std::string name = EpochCacheName(tp);
  if (!disk_->Exists(name)) return Status::OK();
  auto file = disk_->OpenOrCreate(name);
  if (!file.ok()) return file.status();
  std::string bytes;
  LIQUID_RETURN_NOT_OK((*file)->ReadAt(0, (*file)->Size(), &bytes));
  Slice cursor(bytes);
  while (cursor.size() >= 12) {
    uint32_t epoch = 0;
    uint64_t start = 0;
    LIQUID_RETURN_NOT_OK(GetFixed32(&cursor, &epoch));
    LIQUID_RETURN_NOT_OK(GetFixed64(&cursor, &start));
    replica->epoch_cache.emplace_back(static_cast<int>(epoch),
                                      static_cast<int64_t>(start));
  }
  return Status::OK();
}

void Broker::StoreEpochCacheLocked(const TopicPartition& tp, Replica* replica) {
  auto write = [&]() -> Status {
    auto file = disk_->OpenOrCreate(EpochCacheName(tp));
    if (!file.ok()) return file.status();
    std::string bytes;
    for (const auto& [epoch, start] : replica->epoch_cache) {
      PutFixed32(&bytes, static_cast<uint32_t>(epoch));
      PutFixed64(&bytes, static_cast<uint64_t>(start));
    }
    LIQUID_RETURN_NOT_OK((*file)->Truncate(0));
    return (*file)->Append(bytes);
  };
  // Same write-behind contract as the HW checkpoint: full rewrite each time,
  // so a failed store degrades recovery freshness only and is self-healing.
  if (const Status st = write(); !st.ok()) {
    LIQUID_LOG_WARN << "broker " << id_ << ": epoch cache store failed for "
                    << tp.ToString() << ": " << st.ToString();
  }
}

void Broker::NoteEpochLocked(const TopicPartition& tp, Replica* replica,
                             int epoch, int64_t start_offset) {
  if (epoch < 0) return;
  if (!replica->epoch_cache.empty() &&
      replica->epoch_cache.back().first >= epoch) {
    return;
  }
  // liquid-lint: allow(hot-alloc): grows only on a leader-epoch bump (rare control-plane event), never per record.
  replica->epoch_cache.emplace_back(epoch, start_offset);
  StoreEpochCacheLocked(tp, replica);
}

void Broker::TrimEpochCacheLocked(const TopicPartition& tp, Replica* replica,
                                  int64_t offset) {
  bool changed = false;
  while (!replica->epoch_cache.empty() &&
         replica->epoch_cache.back().second >= offset) {
    replica->epoch_cache.pop_back();
    changed = true;
  }
  if (changed) StoreEpochCacheLocked(tp, replica);
}

int Broker::LastLocalEpochLocked(const Replica& replica) {
  if (replica.epoch_cache.empty()) return -1;
  return replica.epoch_cache.back().first;
}

Result<std::pair<int, int64_t>> Broker::EndOffsetForEpoch(
    const TopicPartition& tp, int epoch) {
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  if (!replica->is_leader) return Status::NotLeader("epoch query on follower");
  const auto& cache = replica->epoch_cache;
  // Largest local epoch <= requested; its end is the next entry's start (or
  // our log end if it is the newest epoch).
  for (size_t i = cache.size(); i > 0; --i) {
    if (cache[i - 1].first <= epoch) {
      const int64_t end = i < cache.size() ? cache[i].second
                                           : replica->log->end_offset();
      return std::make_pair(cache[i - 1].first, end);
    }
  }
  // We have no epoch at or below the requested one: diverged from offset 0
  // (or from our first epoch's start).
  return std::make_pair(-1, cache.empty() ? replica->log->end_offset()
                                          : cache.front().second);
}

Status Broker::RebuildProducerStateLocked(Replica* replica) {
  replica->producer_last_seq.clear();
  int64_t cursor = replica->log->start_offset();
  const int64_t end = replica->log->end_offset();
  std::vector<storage::Record> records;
  while (cursor < end) {
    records.clear();
    LIQUID_RETURN_NOT_OK(replica->log->Read(cursor, 1 << 20, &records));
    if (records.empty()) break;
    for (const storage::Record& record : records) {
      // Control markers carry a producer id but no sequence; skip them.
      if (record.producer_id == storage::kNoProducerId || record.sequence < 0) {
        continue;
      }
      auto [it, inserted] = replica->producer_last_seq.try_emplace(
          record.producer_id, record.sequence);
      if (!inserted) it->second = std::max(it->second, record.sequence);
    }
    cursor = records.back().offset + 1;
  }
  return Status::OK();
}

Status Broker::BecomeLeader(const TopicPartition& tp, const PartitionState& state,
                            const TopicConfig& config) {
  WriterMutexLock map_lock(&map_mu_);
  if (!alive_) return Status::Unavailable("broker down");
  Replica& replica = replicas_[tp];
  MutexLock lock(&replica.mu);
  replica.config = config;
  LIQUID_RETURN_NOT_OK(EnsureLogLocked(tp, &replica));
  if (state.leader_epoch < replica.leader_epoch) {
    return Status::FailedPrecondition("stale leader epoch");
  }
  replica.is_leader = true;
  replica.leader = id_;
  replica.leader_epoch = state.leader_epoch;
  replica.isr = state.isr;
  replica.follower_leo.clear();
  // Idempotence across failover: the dedup map is leader memory, but the
  // sequences themselves are in the log (stamped before encoding, so
  // followers replicate them too). A new leader with no dedup state — a
  // restarted broker recovering from disk, or a follower just promoted —
  // must rebuild it, or every mid-stream idempotent producer is permanently
  // fenced with "out-of-order producer sequence". An incumbent leader keeps
  // its in-memory map: it is a superset of the log under ring staging
  // (staged-not-yet-drained batches are invisible to Read).
  if (replica.producer_last_seq.empty()) {
    LIQUID_RETURN_NOT_OK(RebuildProducerStateLocked(&replica));
  }
  NoteEpochLocked(tp, &replica, state.leader_epoch, replica.log->end_offset());
  // If the ISR collapsed to this broker alone, everything local is committed
  // (it was in the ISR for every acknowledged write).
  AdvanceHighWatermarkLocked(tp, &replica);
  LIQUID_LOG_DEBUG << "broker " << id_ << " leads " << tp.ToString()
                   << " epoch " << state.leader_epoch;
  return Status::OK();
}

Status Broker::BecomeFollower(const TopicPartition& tp,
                              const PartitionState& state,
                              const TopicConfig& config) {
  {
    WriterMutexLock map_lock(&map_mu_);
    if (!alive_) return Status::Unavailable("broker down");
    Replica& replica = replicas_[tp];
    MutexLock lock(&replica.mu);
    replica.config = config;
    LIQUID_RETURN_NOT_OK(EnsureLogLocked(tp, &replica));
    if (state.leader_epoch < replica.leader_epoch) {
      return Status::FailedPrecondition("stale leader epoch");
    }
    const bool epoch_changed = state.leader_epoch != replica.leader_epoch;
    replica.is_leader = false;
    replica.leader = state.leader;
    replica.leader_epoch = state.leader_epoch;
    replica.isr = state.isr;
    replica.follower_leo.clear();
    if (!epoch_changed) return Status::OK();
  }

  // KIP-101 reconciliation: walk our epoch cache against the new leader's
  // until we find the divergence point, truncating as we go. A plain
  // min(our LEO, leader LEO) cannot see a divergent suffix that lies BELOW
  // the leader's log end (e.g. an uncommitted record we appended while we
  // briefly led an older epoch).
  //
  // Leader queries happen with no lock held: the leader may concurrently push
  // to this broker (or lead one partition while following another), so broker
  // locks must never nest across broker-to-broker calls. Each locked scope
  // below re-validates that this leadership command is still current and
  // bails out quietly when superseded.
  Broker* leader = state.leader >= 0 && state.leader != id_
                       ? cluster_->broker(state.leader)
                       : nullptr;
  constexpr int64_t kTruncateToHw = -1;
  auto truncate_to = [&](int64_t offset) -> Status {
    ReaderMutexLock map_lock(&map_mu_);
    auto found = FindReplicaShared(tp);
    if (!found.ok()) return Status::OK();  // Replica dropped meanwhile.
    Replica* replica = *found;
    MutexLock lock(&replica->mu);
    if (replica->is_leader || replica->leader_epoch != state.leader_epoch) {
      return Status::OK();  // Superseded by a newer leadership command.
    }
    if (offset == kTruncateToHw) offset = replica->high_watermark;
    offset = std::min(offset, replica->log->end_offset());
    if (replica->log->end_offset() > offset) {
      LIQUID_RETURN_NOT_OK(replica->log->Truncate(offset));
      TrimEpochCacheLocked(tp, replica, offset);
      if (replica->high_watermark > offset) {
        replica->high_watermark = offset;
        StoreHighWatermarkLocked(tp, replica);
      }
    }
    return Status::OK();
  };
  auto local_epoch = [&]() -> int {
    ReaderMutexLock map_lock(&map_mu_);
    auto found = FindReplicaShared(tp);
    if (!found.ok()) return -1;
    Replica* replica = *found;
    MutexLock lock(&replica->mu);
    if (replica->is_leader || replica->leader_epoch != state.leader_epoch) {
      return -1;
    }
    return LastLocalEpochLocked(*replica);
  };

  if (leader == nullptr || !leader->alive()) {
    // Leader unreachable: conservative fallback — everything at/above our own
    // HW may be divergent; it will be re-fetched once a leader is reachable.
    return truncate_to(kTruncateToHw);
  }
  for (int round = 0; round < 64; ++round) {
    const int my_epoch = local_epoch();
    if (my_epoch < 0) break;  // Empty log (or pre-epoch data): nothing to do.
    auto answer = leader->EndOffsetForEpoch(tp, my_epoch);
    if (!answer.ok()) {
      return truncate_to(kTruncateToHw);  // Fallback as above.
    }
    const auto [leader_epoch_found, end_offset] = *answer;
    LIQUID_RETURN_NOT_OK(truncate_to(end_offset));
    if (leader_epoch_found == my_epoch) break;  // Aligned.
    if (local_epoch() == my_epoch) {
      // No progress (our whole last epoch lies below the boundary): the
      // remaining prefix is consistent with the leader's history.
      break;
    }
  }
  return Status::OK();
}

Status Broker::StopReplica(const TopicPartition& tp, bool delete_data) {
  {
    // Exclusive membership lock: once acquired, no request holds the replica
    // (request paths pin it with a shared hold for their whole operation),
    // so erasing — and destroying its Mutex — is safe.
    WriterMutexLock map_lock(&map_mu_);
    auto it = replicas_.find(tp);
    if (it == replicas_.end()) {
      return Status::NotFound("replica not hosted: " + tp.ToString());
    }
    replicas_.erase(it);
  }
  if (!delete_data) return Status::OK();
  // Disk cleanup needs no broker state — run it after unlocking so slow I/O
  // never stalls the whole broker.
  // Propagate the first cleanup failure so callers know on-disk data may
  // be orphaned; the replica itself is already dropped either way.
  Status cleanup = Status::OK();
  auto names = disk_->List(LogPrefix(tp));
  if (names.ok()) {
    for (const auto& name : *names) {
      if (Status st = disk_->Remove(name); !st.ok() && cleanup.ok()) {
        cleanup = std::move(st);
      }
    }
  }
  if (disk_->Exists(HwCheckpointName(tp))) {
    if (Status st = disk_->Remove(HwCheckpointName(tp));
        !st.ok() && cleanup.ok()) {
      cleanup = std::move(st);
    }
  }
  return cleanup;
}

void Broker::AdvanceHighWatermarkLocked(const TopicPartition& tp,
                                        Replica* replica) {
  if (!replica->is_leader) return;
  int64_t min_leo = replica->log->end_offset();
  for (int member : replica->isr) {
    if (member == id_) continue;
    auto it = replica->follower_leo.find(member);
    // Unknown follower progress cannot advance the HW.
    const int64_t leo =
        it == replica->follower_leo.end() ? replica->high_watermark : it->second;
    min_leo = std::min(min_leo, leo);
  }
  if (min_leo > replica->high_watermark) {
    replica->high_watermark = min_leo;
    StoreHighWatermarkLocked(tp, replica);
  }
}

void Broker::PublishIsr(const TopicPartition& tp, const std::vector<int>& isr) {
  auto state_result = cluster_->coord()->Get(paths::PartitionStatePath(tp));
  if (!state_result.ok()) return;
  auto state = PartitionState::Parse(*state_result);
  if (!state.ok()) return;
  state->isr = isr;
  // The ISR in the coordination service is advisory (re-published on every
  // change and re-derived by the controller on election); log and move on.
  if (Status st =
          cluster_->coord()->Set(paths::PartitionStatePath(tp), state->Serialize());
      !st.ok()) {
    LIQUID_LOG_WARN << "broker " << id_ << ": ISR publish failed for "
                    << tp.ToString() << ": " << st.ToString();
  }
}

bool Broker::ShrinkIsrLocked(const TopicPartition& tp, Replica* replica,
                             int follower) {
  auto it = std::find(replica->isr.begin(), replica->isr.end(), follower);
  if (it == replica->isr.end()) return false;
  replica->isr.erase(it);
  isr_shrinks_->Increment();
  LIQUID_LOG_DEBUG << "broker " << id_ << " shrinks ISR of " << tp.ToString()
                   << " removing " << follower;
  AdvanceHighWatermarkLocked(tp, replica);
  return true;
}

bool Broker::MaybeExpandIsrLocked(const TopicPartition& tp, Replica* replica,
                                  int follower) {
  if (Contains(replica->isr, follower)) return false;
  auto it = replica->follower_leo.find(follower);
  if (it == replica->follower_leo.end()) return false;
  if (it->second < replica->log->end_offset()) return false;
  replica->isr.push_back(follower);
  std::sort(replica->isr.begin(), replica->isr.end());
  isr_expands_->Increment();
  LIQUID_LOG_DEBUG << "broker " << id_ << " expands ISR of " << tp.ToString()
                   << " adding " << follower;
  return true;
}

Result<ProduceResponse> Broker::Produce(const TopicPartition& tp,
                                        std::vector<storage::Record> records,
                                        AckMode acks, int64_t producer_id,
                                        int32_t first_sequence,
                                        const std::string& client_id) {
  if (records.empty()) return Status::InvalidArgument("empty produce");
  const int64_t t0 = clock_->NowUs();
  // Shared success-path bookkeeping: broker-level counters/latency plus one
  // "append" span per traced record (leader log append hop). Runs before the
  // response is returned on both the acks!=all and acks=all paths.
  auto observe_append = [&](const std::vector<storage::Record>& appended) {
    int64_t bytes = 0;
    for (const auto& record : appended) {
      bytes += static_cast<int64_t>(record.EncodedSize());
    }
    produce_records_->Increment(static_cast<int64_t>(appended.size()));
    produce_bytes_->Increment(bytes);
    const int64_t now_us = clock_->NowUs();
    produce_us_->Record(now_us - t0);
    TraceCollector* tracer = TraceCollector::Default();
    if (!tracer->enabled()) return;
    for (const auto& record : appended) {
      if (!record.traced()) continue;
      tracer->Record(Span{record.trace_id, tracer->NewSpanId(), record.span_id,
                          t0, now_us, "append", tp.ToString()});
    }
  };
  LIQUID_RETURN_NOT_OK(
      cluster_->acls()->Check(client_id, tp.topic, AclOperation::kWrite));
  // Chaos surface (DESIGN.md §7): reject/delay the produce before any
  // partition state is touched — models a request lost or stuck on arrival.
  LIQUID_FAULT_POINT("broker.produce.before_append");
  int64_t throttle_ms = 0;
  if (!client_id.empty()) {
    int64_t payload = 0;
    for (const auto& record : records) {
      payload += static_cast<int64_t>(record.EncodedSize());
    }
    throttle_ms = quotas_.Charge(client_id, payload);
    if (throttle_ms > 0) {
      // Kafka-style client throttling: the verdict rides back in the
      // response and the PRODUCER backs off (see Producer::SendBatch). The
      // broker thread stays available instead of sleeping on behalf of one
      // tenant — essential now that partitions are served concurrently.
      quota_produce_throttles_->Increment();
    }
  }
  std::vector<int> push_targets;
  int epoch = 0;
  int64_t base = 0;
  int64_t leo = 0;
  int64_t leader_hw = 0;
  bool group_sync = false;
  bool ring_staged = false;
  storage::EncodedBatch batch;
  {
    ReaderMutexLock map_lock(&map_mu_);
    LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
    const int64_t lock_t0 = clock_->NowUs();
    MutexLock lock(&replica->mu);
    produce_lock_wait_us_->Record(clock_->NowUs() - lock_t0);
    if (!replica->is_leader) {
      return Status::NotLeader("broker " + std::to_string(id_) +
                               " is not leader of " + tp.ToString());
    }
    if (acks == AckMode::kAll &&
        static_cast<int>(replica->isr.size()) <
            replica->config.min_insync_replicas) {
      return Status::Unavailable("ISR below min.insync.replicas for " +
                                 tp.ToString());
    }
    bool advanced_seq = false;
    int32_t prev_seq = -1;
    if (producer_id != storage::kNoProducerId && first_sequence >= 0) {
      auto it = replica->producer_last_seq.find(producer_id);
      const int32_t last = it == replica->producer_last_seq.end() ? -1 : it->second;
      if (first_sequence <= last) {
        // Duplicate batch (retry after a lost ack): deduplicate.
        produce_duplicates_dropped_->Increment();
        ProduceResponse resp;
        resp.base_offset = -1;
        resp.log_end_offset = replica->log->end_offset();
        resp.throttle_ms = throttle_ms;
        return resp;
      }
      if (first_sequence != last + 1) {
        return Status::InvalidArgument("out-of-order producer sequence");
      }
      replica->producer_last_seq[producer_id] =
          first_sequence + static_cast<int32_t>(records.size()) - 1;
      advanced_seq = true;
      prev_seq = last;
      int32_t seq = first_sequence;
      for (auto& record : records) {
        record.producer_id = producer_id;
        record.sequence = seq++;
      }
    }
    for (auto& record : records) record.leader_epoch = replica->leader_epoch;
    // Encode-once: the batch buffer produced here is the exact bytes on our
    // disk, and the same buffer is forwarded to followers below. Under
    // Staging::kRing, async_stage makes this a lock-free claim + encode +
    // publish: the drainer appends later, and acknowledgment flows through
    // AwaitAppended below (acks=all) or the high-watermark (acks<=1).
    storage::AppendOptions append_options;
    append_options.async_stage = true;
    const int64_t pre_append_end = replica->log->end_offset();
    auto batch_result = replica->log->AppendBatch(&records, append_options);
    if (!batch_result.ok()) {
      // end_offset() advances only when the write itself committed, so it
      // distinguishes "batch never entered the log" from "batch is in the
      // log but its every-batch fsync failed" (phase 6). Only the former
      // rolls the dedup window back: ring backpressure (ResourceExhausted)
      // makes append rejections a normal, retriable event, and the retry of
      // that batch must not be dropped as a duplicate. After a sync failure
      // the records are readable in the log, so keeping the window advanced
      // turns the producer's same-sequence resend into a duplicate-drop
      // acknowledgment instead of a second, duplicating append.
      const bool landed = replica->log->end_offset() > pre_append_end;
      if (advanced_seq && !landed) {
        if (prev_seq < 0) {
          replica->producer_last_seq.erase(producer_id);
        } else {
          replica->producer_last_seq[producer_id] = prev_seq;
        }
      }
      return batch_result.status();
    }
    batch = std::move(batch_result).value();
    base = batch.base_offset();
    // The batch's own extent, not end_offset(): under ring staging the
    // append may not have committed yet (end_offset() excludes staged runs);
    // under the locked path the two are identical while replica->mu is held.
    leo = batch.last_offset() + 1;
    ring_staged =
        replica->log->config().staging == storage::Staging::kRing;
    broker_produce_records_->Increment(static_cast<int64_t>(records.size()));
    replica->append_records->Increment(static_cast<int64_t>(records.size()));
    if (acks != AckMode::kAll) {
      AdvanceHighWatermarkLocked(tp, replica);
      // Chaos surface: the batch is appended but the acknowledgment is lost
      // or delayed — the retry/idempotence path must absorb the resend.
      LIQUID_FAULT_POINT("broker.produce.before_ack");
      observe_append(records);
      ProduceResponse resp;
      resp.base_offset = base;
      resp.log_end_offset = leo;
      resp.throttle_ms = throttle_ms;
      return resp;
    }
    epoch = replica->leader_epoch;
    leader_hw = replica->high_watermark;
    group_sync =
        replica->log->config().sync_mode == storage::SyncMode::kGroup;
    push_targets.reserve(replica->isr.size());
    for (int member : replica->isr) {
      if (member != id_) push_targets.push_back(member);
    }
  }

  // acks=all: synchronously replicate to ISR followers (their pull loop,
  // executed inline) without holding any lock (avoids lock cycles). The
  // follower receives the leader's encoded bytes, not re-encoded Records.
  std::vector<int> failed;
  failed.reserve(push_targets.size());
  for (int member : push_targets) {
    Broker* follower = cluster_->broker(member);
    Status st = follower == nullptr
                    ? Status::Unavailable("no such broker")
                    : follower->AppendEncodedAsFollower(tp, batch, epoch,
                                                        leader_hw);
    if (!st.ok()) failed.push_back(member);
  }

  // Group-commit durability: a kAll acknowledgment also covers our own fsync
  // (DESIGN.md §6c). The wait runs after follower replication so the sync
  // window overlaps the replication round-trips, and holds only the shared
  // membership lock — which keeps the Replica (and its log) alive, since
  // erasing one needs map_mu_ exclusive — but NOT the replica lock, so
  // same-partition producers keep filling the window we are waiting on.
  if ((ring_staged || group_sync) && acks == AckMode::kAll) {
    ReaderMutexLock map_lock(&map_mu_);
    auto replica_result = FindReplicaShared(tp);
    if (replica_result.ok()) {
      storage::Log* log = nullptr;
      {
        MutexLock lock(&(*replica_result)->mu);
        log = (*replica_result)->log.get();
      }
      if (log != nullptr) {
        // Ring staging: an acks=all acknowledgment asserts the leader
        // actually appended the batch, so wait for the drainer to land it
        // (per-slot completion surfaces through the committed/durable
        // watermarks) before the durability wait below.
        if (ring_staged) LIQUID_RETURN_NOT_OK(log->AwaitAppended(base, leo));
        if (group_sync) LIQUID_RETURN_NOT_OK(log->AwaitDurable(leo));
      }
    }
  }

  std::optional<std::vector<int>> publish_isr;
  auto result = [&]() -> Result<ProduceResponse> {
    ReaderMutexLock map_lock(&map_mu_);
    LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
    MutexLock lock(&replica->mu);
    if (!replica->is_leader || replica->leader_epoch != epoch) {
      return Status::NotLeader("leadership lost during replication");
    }
    for (int member : push_targets) {
      if (!Contains(failed, member)) replica->follower_leo[member] = leo;
    }
    bool shrank = false;
    for (int member : failed) {
      shrank = ShrinkIsrLocked(tp, replica, member) || shrank;
    }
    if (shrank) publish_isr = replica->isr;
    if (static_cast<int>(replica->isr.size()) <
        replica->config.min_insync_replicas) {
      return Status::Unavailable("ISR shrank below min.insync.replicas");
    }
    AdvanceHighWatermarkLocked(tp, replica);
    // Chaos surface: appended AND replicated, but the acknowledgment is
    // lost — the strongest duplicate-generation point for idempotence tests.
    LIQUID_FAULT_POINT("broker.produce.before_ack");
    observe_append(records);
    ProduceResponse resp;
    resp.base_offset = base;
    resp.log_end_offset = leo;
    resp.throttle_ms = throttle_ms;
    return resp;
  }();
  // ISR changes reach the coordination service only after every broker lock
  // is released: the coord write fires watches that re-enter brokers on this
  // same thread.
  if (publish_isr.has_value()) PublishIsr(tp, *publish_isr);
  return result;
}

Status Broker::AppendAsFollower(const TopicPartition& tp,
                                const std::vector<storage::Record>& records,
                                int leader_epoch, int64_t leader_hw) {
  // Chaos surface: a follower that drops/delays leader pushes — the leader
  // reacts by shrinking the ISR, which is exactly what the soak verifies.
  LIQUID_FAULT_POINT("broker.replicate.before_append");
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  if (leader_epoch < replica->leader_epoch) {
    return Status::FailedPrecondition("push from stale leader epoch");
  }
  replica->leader_epoch = leader_epoch;
  if (records.empty()) return Status::OK();
  const int64_t local_end = replica->log->end_offset();
  if (records.front().offset > local_end) {
    // We missed earlier data (e.g. we were out of the ISR); signal the leader
    // so it shrinks the ISR; the pull path will catch us up.
    return Status::OutOfRange("follower behind leader push");
  }
  std::vector<storage::Record> fresh;
  for (const auto& record : records) {
    if (record.offset >= local_end) fresh.push_back(record);
  }
  if (!fresh.empty()) {
    const int64_t t0 = clock_->NowUs();
    LIQUID_RETURN_NOT_OK(replica->log->AppendWithOffsets(fresh));
    for (const auto& record : fresh) {
      NoteEpochLocked(tp, replica, record.leader_epoch, record.offset);
    }
    replicated_records_->Increment(static_cast<int64_t>(fresh.size()));
    replica->append_records->Increment(static_cast<int64_t>(fresh.size()));
    TraceCollector* tracer = TraceCollector::Default();
    if (tracer->enabled()) {
      const int64_t now_us = clock_->NowUs();
      for (const auto& record : fresh) {
        if (!record.traced()) continue;
        tracer->Record(Span{record.trace_id, tracer->NewSpanId(),
                            record.span_id, t0, now_us, "replicate",
                            tp.ToString() + " follower=" + std::to_string(id_)});
      }
    }
  }
  const int64_t new_hw =
      std::min<int64_t>(leader_hw, replica->log->end_offset());
  if (new_hw > replica->high_watermark) {
    replica->high_watermark = new_hw;
    StoreHighWatermarkLocked(tp, replica);
  }
  return Status::OK();
}

Status Broker::AppendEncodedAsFollower(const TopicPartition& tp,
                                       const storage::EncodedBatch& batch,
                                       int leader_epoch, int64_t leader_hw) {
  // Same chaos surface as AppendAsFollower for the encode-once push path.
  LIQUID_FAULT_POINT("broker.replicate.before_append");
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  if (leader_epoch < replica->leader_epoch) {
    return Status::FailedPrecondition("push from stale leader epoch");
  }
  replica->leader_epoch = leader_epoch;
  if (!batch.empty()) {
    const int64_t local_end = replica->log->end_offset();
    if (batch.base_offset() > local_end) {
      // We missed earlier data (e.g. we were out of the ISR); signal the
      // leader so it shrinks the ISR; the pull path will catch us up.
      return Status::OutOfRange("follower behind leader push");
    }
    // Drop frames we already store — a frame-metadata slice of the shared
    // buffer, not a copy — then land the leader's bytes verbatim.
    storage::EncodedBatch fresh = batch;
    fresh.SliceFrom(local_end);
    if (!fresh.empty()) {
      const int64_t t0 = clock_->NowUs();
      LIQUID_RETURN_NOT_OK(replica->log->AppendEncoded(fresh));
      for (const auto& frame : fresh.frames()) {
        NoteEpochLocked(tp, replica, frame.leader_epoch, frame.offset);
      }
      replicated_records_->Increment(
          static_cast<int64_t>(fresh.record_count()));
      replica->append_records->Increment(
          static_cast<int64_t>(fresh.record_count()));
      TraceCollector* tracer = TraceCollector::Default();
      if (tracer->enabled()) {
        // Only traced frames are decoded (to read their trace context); the
        // untraced common case touches no payload bytes at all.
        const int64_t now_us = clock_->NowUs();
        for (size_t i = 0; i < fresh.frames().size(); ++i) {
          if (!fresh.frames()[i].traced) continue;
          auto record = fresh.DecodeFrame(i);
          if (!record.ok()) continue;
          // liquid-lint: allow(hot-alloc): span annotation built only for sampled traced frames with tracing enabled; the untraced common case skips this block.
          tracer->Record(Span{record->trace_id, tracer->NewSpanId(),
                              record->span_id, t0, now_us, "replicate",
                              tp.ToString() + " follower=" +
                                  std::to_string(id_)});
        }
      }
    }
  }
  const int64_t new_hw =
      std::min<int64_t>(leader_hw, replica->log->end_offset());
  if (new_hw > replica->high_watermark) {
    replica->high_watermark = new_hw;
    StoreHighWatermarkLocked(tp, replica);
  }
  return Status::OK();
}

int64_t Broker::LastStableOffsetLocked(const Replica& replica) {
  int64_t lso = replica.high_watermark;
  for (const auto& [pid, first] : replica.ongoing_txns) {
    lso = std::min(lso, first);
  }
  return lso;
}

Status Broker::BeginPartitionTxn(const TopicPartition& tp, int64_t pid) {
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  if (!replica->is_leader) return Status::NotLeader("txn begin on follower");
  replica->ongoing_txns.emplace(pid, replica->log->end_offset());
  return Status::OK();
}

Status Broker::WriteTxnMarker(const TopicPartition& tp, int64_t pid,
                              bool committed) {
  std::vector<storage::Record> marker;
  std::vector<int> targets;
  int epoch = 0;
  int64_t leo = 0;
  int64_t hw = 0;
  {
    ReaderMutexLock map_lock(&map_mu_);
    LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
    MutexLock lock(&replica->mu);
    if (!replica->is_leader) return Status::NotLeader("txn marker on follower");
    auto it = replica->ongoing_txns.find(pid);
    if (it == replica->ongoing_txns.end()) {
      return Status::NotFound("no ongoing txn for pid " + std::to_string(pid));
    }
    marker.push_back(storage::Record::ControlMarker(pid, committed));
    marker[0].leader_epoch = replica->leader_epoch;
    auto base = replica->log->Append(&marker);
    if (!base.ok()) return base.status();
    if (!committed) {
      replica->aborted_ranges.push_back(
          AbortedRange{pid, it->second, marker.front().offset});
    }
    replica->ongoing_txns.erase(it);
    leo = replica->log->end_offset();
    for (int member : replica->isr) {
      if (member != id_) targets.push_back(member);
    }
    epoch = replica->leader_epoch;
    hw = replica->high_watermark;
  }
  // Synchronously replicate the marker to the ISR so the LSO advance is
  // durable like any acks=all write — without holding any lock: a follower of
  // this partition may simultaneously lead another partition and push to us,
  // and broker locks must never be held across broker-to-broker calls.
  std::vector<int> reached;
  for (int member : targets) {
    Broker* follower = cluster_->broker(member);
    if (follower != nullptr &&
        follower->AppendAsFollower(tp, marker, epoch, hw).ok()) {
      reached.push_back(member);
    }
  }
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  if (!replica->is_leader || replica->leader_epoch != epoch) {
    return Status::NotLeader("leadership lost during marker replication");
  }
  for (int member : reached) replica->follower_leo[member] = leo;
  AdvanceHighWatermarkLocked(tp, replica);
  return Status::OK();
}

Result<int64_t> Broker::LastStableOffset(const TopicPartition& tp) {
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  return LastStableOffsetLocked(*replica);
}

Result<FetchResponse> Broker::Fetch(const TopicPartition& tp, int64_t offset,
                                    size_t max_bytes, int replica_id,
                                    const std::string& client_id,
                                    bool read_committed) {
  const int64_t t0 = clock_->NowUs();
  LIQUID_RETURN_NOT_OK(
      cluster_->acls()->Check(client_id, tp.topic, AclOperation::kRead));
  // Chaos surface: fail/delay the fetch before any partition state is read.
  LIQUID_FAULT_POINT("broker.fetch.before_read");
  int64_t throttle_ms = 0;
  if (!client_id.empty()) {
    throttle_ms = quotas_.Charge(client_id, static_cast<int64_t>(max_bytes));
    if (throttle_ms > 0) {
      // Client-side throttle contract (see Produce): verdict in the
      // response, enforcement in the consumer.
      quota_fetch_throttles_->Increment();
    }
  }
  std::optional<std::vector<int>> publish_isr;
  auto result = [&]() -> Result<FetchResponse> {
    ReaderMutexLock map_lock(&map_mu_);
    LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
    MutexLock lock(&replica->mu);
    if (!replica->is_leader) {
      return Status::NotLeader("broker " + std::to_string(id_) +
                               " is not leader of " + tp.ToString());
    }
    FetchResponse resp;
    resp.throttle_ms = throttle_ms;
    if (replica_id >= 0) {
      // A replica fetch at `offset` proves the follower has [.., offset).
      replica->follower_leo[replica_id] = offset;
      AdvanceHighWatermarkLocked(tp, replica);
      if (offset >= replica->log->end_offset()) {
        if (MaybeExpandIsrLocked(tp, replica, replica_id)) {
          publish_isr = replica->isr;
        }
      }
      // Replica fetches return the shared encoded buffer: the follower
      // appends these bytes verbatim (and they were themselves encoded just
      // once, on the original produce path).
      LIQUID_RETURN_NOT_OK(
          replica->log->ReadEncoded(offset, max_bytes, &resp.batch));
      resp.next_fetch_offset =
          resp.batch.empty() ? offset : resp.batch.last_offset() + 1;
    } else {
      // Under ring staging the high watermark only moves when something
      // observes the drainer's progress; advancing it on the consumer fetch
      // path keeps a quiet partition's tail visible without waiting for the
      // next produce or replica fetch. (No-op when already current.)
      AdvanceHighWatermarkLocked(tp, replica);
      // Consumers see only committed data; read_committed additionally hides
      // data of ongoing transactions (LSO clamp), aborted data and markers.
      const int64_t visibility_bound = read_committed
                                           ? LastStableOffsetLocked(*replica)
                                           : replica->high_watermark;
      LIQUID_RETURN_NOT_OK(replica->log->Read(offset, max_bytes, &resp.records));
      while (!resp.records.empty() &&
             resp.records.back().offset >= visibility_bound) {
        resp.records.pop_back();
      }
      resp.next_fetch_offset =
          resp.records.empty() ? std::max(offset, replica->log->start_offset())
                               : resp.records.back().offset + 1;
      if (read_committed) {
        std::vector<storage::Record> visible;
        visible.reserve(resp.records.size());
        for (auto& record : resp.records) {
          if (record.is_control) continue;
          bool aborted = false;
          for (const AbortedRange& range : replica->aborted_ranges) {
            if (record.producer_id == range.pid &&
                record.offset >= range.first_offset &&
                record.offset < range.last_offset) {
              aborted = true;
              break;
            }
          }
          if (!aborted) visible.push_back(std::move(record));
        }
        resp.records = std::move(visible);
      }
      broker_fetch_records_->Increment(
          static_cast<int64_t>(resp.records.size()));
      fetch_records_->Increment(static_cast<int64_t>(resp.records.size()));
      const int64_t now_us = clock_->NowUs();
      fetch_us_->Record(now_us - t0);
      // One "fetch" span per traced record handed to a consumer; the consumer
      // (or job) parents its own span on the record's span_id afterwards, so
      // the span_id field stays the record's last producer-side hop.
      TraceCollector* tracer = TraceCollector::Default();
      if (tracer->enabled()) {
        for (const auto& record : resp.records) {
          if (!record.traced()) continue;
          tracer->Record(Span{record.trace_id, tracer->NewSpanId(),
                              record.span_id, t0, now_us, "fetch",
                              tp.ToString()});
        }
      }
    }
    resp.high_watermark = replica->high_watermark;
    resp.log_start_offset = replica->log->start_offset();
    resp.log_end_offset = replica->log->end_offset();
    return resp;
  }();
  // Publish after every broker lock is released (coord watches re-enter).
  if (publish_isr.has_value()) PublishIsr(tp, *publish_isr);
  return result;
}

Result<int64_t> Broker::OffsetForTimestamp(const TopicPartition& tp,
                                           int64_t ts_ms) {
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  return replica->log->OffsetForTimestamp(ts_ms);
}

Result<std::pair<int64_t, int64_t>> Broker::OffsetBounds(
    const TopicPartition& tp) {
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  return std::make_pair(replica->log->start_offset(), replica->high_watermark);
}

Status Broker::ReplicateFromLeaders() {
  struct PullTask {
    TopicPartition tp;
    int64_t from;
    int leader;
  };
  std::vector<PullTask> tasks;
  {
    ReaderMutexLock map_lock(&map_mu_);
    if (!alive_) return Status::Unavailable("broker down");
    for (auto& [tp, replica] : replicas_) {
      MutexLock lock(&replica.mu);
      if (replica.is_leader || replica.leader < 0) continue;
      tasks.push_back(PullTask{tp, replica.log->end_offset(), replica.leader});
    }
  }
  for (const PullTask& task : tasks) {
    Broker* leader = cluster_->broker(task.leader);
    if (leader == nullptr) continue;
    auto resp = leader->Fetch(task.tp, task.from, config_.fetch_max_bytes, id_);
    if (!resp.ok()) {
      if (resp.status().IsNotLeader() || resp.status().IsUnavailable()) {
        // Stale view; refresh from the coordination service.
        auto data = cluster_->coord()->Get(paths::PartitionStatePath(task.tp));
        if (!data.ok()) continue;
        auto state = PartitionState::Parse(*data);
        if (!state.ok() || state->leader < 0 || state->leader == id_) continue;
        auto config = cluster_->GetTopicConfig(task.tp.topic);
        if (!config.ok()) continue;
        if (Status st = BecomeFollower(task.tp, *state, *config); !st.ok()) {
          // Retried on the next replication tick with a fresh metadata read.
          LIQUID_LOG_WARN << "broker " << id_ << ": become-follower failed for "
                          << task.tp.ToString() << ": " << st.ToString();
        }
      }
      continue;
    }
    ReaderMutexLock map_lock(&map_mu_);
    auto replica_result = FindReplicaShared(task.tp);
    if (!replica_result.ok()) continue;
    Replica* replica = *replica_result;
    MutexLock lock(&replica->mu);
    if (replica->is_leader) continue;
    if (!resp->batch.empty() &&
        resp->batch.base_offset() >= replica->log->end_offset()) {
      // The leader's shared buffer lands here byte-for-byte.
      Status st = replica->log->AppendEncoded(resp->batch);
      if (!st.ok()) continue;
      for (const auto& frame : resp->batch.frames()) {
        NoteEpochLocked(task.tp, replica, frame.leader_epoch, frame.offset);
      }
      replicated_records_->Increment(
          static_cast<int64_t>(resp->batch.record_count()));
      replica->append_records->Increment(
          static_cast<int64_t>(resp->batch.record_count()));
    }
    const int64_t new_hw =
        std::min<int64_t>(resp->high_watermark, replica->log->end_offset());
    if (new_hw > replica->high_watermark) {
      replica->high_watermark = new_hw;
      StoreHighWatermarkLocked(task.tp, replica);
    }
    // If retention deleted our fetch position on the leader, jump forward.
    if (resp->batch.empty() && task.from < resp->log_start_offset) {
      // Restart the local log at the leader's start offset.
      // (Simplified out-of-range handling.)
      if (Status st = replica->log->Truncate(replica->log->start_offset());
          !st.ok()) {
        LIQUID_LOG_WARN << "broker " << id_ << ": out-of-range truncate failed"
                        << " for " << task.tp.ToString() << ": "
                        << st.ToString();
      }
    }
  }
  return Status::OK();
}

Status Broker::RunLogMaintenance() {
  std::vector<TopicPartition> hosted = HostedPartitions();
  for (const auto& tp : hosted) {
    ReaderMutexLock map_lock(&map_mu_);
    auto replica_result = FindReplicaShared(tp);
    if (!replica_result.ok()) continue;
    Replica* replica = *replica_result;
    MutexLock lock(&replica->mu);
    auto deleted = replica->log->ApplyRetention();
    if (!deleted.ok()) return deleted.status();
    if (replica->config.log.compaction_enabled) {
      auto stats = replica->log->Compact();
      if (!stats.ok()) return stats.status();
    }
  }
  return Status::OK();
}

Result<storage::CompactionStats> Broker::CompactPartition(
    const TopicPartition& tp) {
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  return replica->log->Compact();
}

Result<int64_t> Broker::LogEndOffset(const TopicPartition& tp) {
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  return replica->log->end_offset();
}

Result<int64_t> Broker::HighWatermark(const TopicPartition& tp) {
  ReaderMutexLock map_lock(&map_mu_);
  LIQUID_ASSIGN_OR_RETURN(Replica * replica, FindReplicaShared(tp));
  MutexLock lock(&replica->mu);
  return replica->high_watermark;
}

std::vector<TopicPartition> Broker::HostedPartitions() const {
  ReaderMutexLock lock(&map_mu_);
  std::vector<TopicPartition> out;
  for (const auto& [tp, replica] : replicas_) out.push_back(tp);
  return out;
}

bool Broker::HostsPartition(const TopicPartition& tp) const {
  ReaderMutexLock lock(&map_mu_);
  return replicas_.count(tp) > 0;
}

bool Broker::IsLeaderFor(const TopicPartition& tp) const {
  ReaderMutexLock lock(&map_mu_);
  auto it = replicas_.find(tp);
  if (it == replicas_.end()) return false;
  MutexLock replica_lock(&it->second.mu);
  return it->second.is_leader;
}

}  // namespace liquid::messaging
