#include "messaging/controller.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"

namespace liquid::messaging {

Controller::Controller(Cluster* cluster, Broker* self)
    : cluster_(cluster),
      self_(self),
      alive_token_(std::make_shared<std::atomic<bool>>(true)) {}

Controller::~Controller() { alive_token_->store(false); }

Status Controller::Start() {
  ArmMembershipWatch();
  return ElectLeaders();
}

void Controller::ArmMembershipWatch() {
  // The watch may fire after this Controller is destroyed (the service owns
  // the callback); the token guards the dangling `this`.
  auto token = alive_token_;
  // Called for the watch side effect only; the children list itself is
  // re-read inside the election pass, so the value (and a transient error)
  // can be dropped here.
  LIQUID_IGNORE_ERROR(cluster_->coord()->GetChildren(
      paths::BrokerIds(), [this, token](const coord::WatchEvent&) {
        if (!token->load()) return;
        if (!self_->alive()) return;
        OnMembershipChange();
      }));
}

void Controller::OnMembershipChange() {
  ArmMembershipWatch();  // One-shot watches must be re-armed.
  Status st = ElectLeaders();
  if (!st.ok()) {
    LIQUID_LOG_ERROR << "controller election pass failed: " << st.ToString();
  }
}

Status Controller::ElectLeaders() {
  MutexLock lock(&mu_);
  const std::vector<int> alive_ids = cluster_->AliveBrokerIds();
  const std::set<int> alive(alive_ids.begin(), alive_ids.end());
  // One partition's failure must not starve the rest of the pass; remember
  // the first error and keep going, so the caller still sees the failure.
  Status pass_status = Status::OK();

  for (const std::string& topic : cluster_->Topics()) {
    auto config = cluster_->GetTopicConfig(topic);
    if (!config.ok()) continue;
    auto partitions = cluster_->PartitionsOf(topic);
    if (!partitions.ok()) continue;
    for (const TopicPartition& tp : *partitions) {
      // liquid-lint: allow(snapshot-then-call): mu_ guards no data; it serializes whole election passes, and the coord reads are the pass itself.
      auto data = cluster_->coord()->Get(paths::PartitionStatePath(tp));
      if (!data.ok()) continue;
      auto state_result = PartitionState::Parse(*data);
      if (!state_result.ok()) continue;
      PartitionState state = std::move(state_result).value();

      const bool leader_alive =
          state.leader >= 0 && alive.count(state.leader) > 0;
      bool changed = false;
      if (!leader_alive) {
        // Prefer an alive ISR member (no data loss); optionally fall back to
        // any alive replica (unclean election: availability over durability).
        std::vector<int> candidates;
        for (int replica : state.isr) {
          if (alive.count(replica)) candidates.push_back(replica);
        }
        if (candidates.empty() && config->unclean_leader_election) {
          for (int replica : state.replicas) {
            if (alive.count(replica)) candidates.push_back(replica);
          }
        }
        if (candidates.empty()) {
          if (state.leader != -1) {
            state.leader = -1;  // Partition offline.
            changed = true;
          }
        } else {
          state.leader = candidates.front();
          state.leader_epoch++;
          state.isr = candidates;
          changed = true;
        }
        if (changed) {
          // The published state IS the election result; if it cannot be
          // stored, do not tell brokers about a leadership nobody can see.
          if (Status st = cluster_->coord()->Set(
                  paths::PartitionStatePath(tp), state.Serialize());
              !st.ok()) {
            if (pass_status.ok()) pass_status = st;
            LIQUID_LOG_WARN << "controller: state publish failed for "
                            << tp.ToString() << ": " << st.ToString();
            continue;
          }
          LIQUID_LOG_DEBUG << "controller: " << tp.ToString() << " leader -> "
                           << state.leader << " epoch " << state.leader_epoch;
        }
      }
      if (state.leader < 0) continue;

      // Propagate roles to alive replicas. Only notify on change, except that
      // an alive replica that does not yet host the partition (restart) is
      // always (re)initialized as follower/leader.
      for (int replica_id : state.replicas) {
        if (!alive.count(replica_id)) continue;
        Broker* broker = cluster_->broker(replica_id);
        if (broker == nullptr) continue;
        // liquid-lint: allow(snapshot-then-call): mu_ guards no data; two concurrent passes would interleave role changes, so the Become* calls must stay inside the serialized pass.
        if (!changed && broker->HostsPartition(tp)) continue;
        // liquid-lint: allow(snapshot-then-call): same pass-serialization contract as above.
        Status st = replica_id == state.leader
                        ? broker->BecomeLeader(tp, state, *config)
                        : broker->BecomeFollower(tp, state, *config);
        if (!st.ok()) {
          LIQUID_LOG_WARN << "controller: role change failed on broker "
                          << replica_id << " for " << tp.ToString() << ": "
                          << st.ToString();
        }
      }
    }
  }
  return pass_status;
}

}  // namespace liquid::messaging
