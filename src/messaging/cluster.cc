#include "messaging/cluster.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "common/logging.h"

namespace liquid::messaging {

Cluster::Cluster(ClusterConfig config, Clock* clock)
    : config_(config), clock_(clock) {}

Cluster::~Cluster() {
  StopReplicationThread();
  // Stop brokers gracefully so controller churn during teardown is bounded.
  std::vector<Broker*> to_stop;
  {
    MutexLock lock(&mu_);
    for (auto& [id, broker] : brokers_) to_stop.push_back(broker.get());
  }
  for (Broker* broker : to_stop) broker->Stop();
}

Status Cluster::Start() {
  // Bootstrap the persistent coordination namespace. Creation is idempotent
  // across restarts: AlreadyExists is fine, anything else is fatal.
  const int64_t session = coord_.CreateSession();
  auto bootstrap = [&](const std::string& path) -> Status {
    auto created = coord_.Create(session, path, "", coord::NodeKind::kPersistent);
    if (!created.ok() && !created.status().IsAlreadyExists()) {
      return created.status();
    }
    return Status::OK();
  };
  LIQUID_RETURN_NOT_OK(bootstrap(paths::BrokersRoot()));
  LIQUID_RETURN_NOT_OK(bootstrap(paths::BrokerIds()));
  LIQUID_RETURN_NOT_OK(bootstrap(paths::TopicsRoot()));
  {
    MutexLock lock(&mu_);
    for (int id = 0; id < config_.num_brokers; ++id) {
      disks_[id] = std::make_unique<storage::MemDisk>(config_.disk_latency);
      brokers_[id] = std::make_unique<Broker>(id, this, disks_[id].get(),
                                              clock_, config_.broker);
    }
  }
  for (int id : BrokerIds()) {
    LIQUID_RETURN_NOT_OK(broker(id)->Start());
  }
  return Status::OK();
}

Status Cluster::CreateTopic(const std::string& name, const TopicConfig& config) {
  if (config.partitions < 1 || config.replication_factor < 1) {
    return Status::InvalidArgument("bad topic config for " + name);
  }
  std::vector<int> alive = AliveBrokerIds();
  if (static_cast<int>(alive.size()) < config.replication_factor) {
    return Status::InvalidArgument("replication factor exceeds alive brokers");
  }
  {
    MutexLock lock(&mu_);
    if (topics_.count(name)) {
      return Status::AlreadyExists("topic exists: " + name);
    }
    topics_[name] = config;
  }

  // Admin session for persistent metadata nodes.
  const int64_t session = coord_.CreateSession();
  if (!coord_.Exists(paths::TopicsRoot())) {
    auto root = coord_.Create(session, paths::TopicsRoot(), "",
                              coord::NodeKind::kPersistent);
    // A concurrent CreateTopic may have won the race; that is fine.
    if (!root.ok() && !root.status().IsAlreadyExists()) return root.status();
  }
  auto created = coord_.Create(session, paths::Topic(name), "",
                               coord::NodeKind::kPersistent);
  if (!created.ok()) return created.status();
  LIQUID_RETURN_NOT_OK(coord_
                           .Create(session, paths::Partitions(name),
                                   std::to_string(config.partitions),
                                   coord::NodeKind::kPersistent)
                           .status());

  for (int p = 0; p < config.partitions; ++p) {
    const TopicPartition tp{name, p};
    PartitionState state;
    for (int r = 0; r < config.replication_factor; ++r) {
      state.replicas.push_back(
          alive[(p + r) % static_cast<int>(alive.size())]);
    }
    state.leader = state.replicas.front();
    state.leader_epoch = 0;
    state.isr = state.replicas;
    LIQUID_RETURN_NOT_OK(coord_
                             .Create(session, paths::PartitionStatePath(tp),
                                     state.Serialize(),
                                     coord::NodeKind::kPersistent)
                             .status());
    for (int replica_id : state.replicas) {
      Broker* b = broker(replica_id);
      if (b == nullptr) continue;
      Status st = replica_id == state.leader
                      ? b->BecomeLeader(tp, state, config)
                      : b->BecomeFollower(tp, state, config);
      LIQUID_RETURN_NOT_OK(st);
    }
  }
  return Status::OK();
}

Result<TopicConfig> Cluster::GetTopicConfig(const std::string& topic) const {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("no such topic: " + topic);
  return it->second;
}

std::vector<std::string> Cluster::Topics() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (const auto& [name, config] : topics_) out.push_back(name);
  return out;
}

Result<std::vector<TopicPartition>> Cluster::PartitionsOf(
    const std::string& topic) const {
  MutexLock lock(&mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("no such topic: " + topic);
  std::vector<TopicPartition> out;
  for (int p = 0; p < it->second.partitions; ++p) {
    out.push_back(TopicPartition{topic, p});
  }
  return out;
}

Result<PartitionState> Cluster::GetPartitionState(
    const TopicPartition& tp) const {
  auto data = const_cast<coord::CoordinationService&>(coord_).Get(
      paths::PartitionStatePath(tp));
  if (!data.ok()) return data.status();
  return PartitionState::Parse(*data);
}

Result<Broker*> Cluster::LeaderFor(const TopicPartition& tp) {
  LIQUID_ASSIGN_OR_RETURN(PartitionState state, GetPartitionState(tp));
  if (state.leader < 0) {
    return Status::Unavailable("partition offline: " + tp.ToString());
  }
  Broker* b = broker(state.leader);
  if (b == nullptr || !b->alive()) {
    return Status::Unavailable("leader down: " + tp.ToString());
  }
  return b;
}

Broker* Cluster::broker(int id) {
  MutexLock lock(&mu_);
  auto it = brokers_.find(id);
  return it == brokers_.end() ? nullptr : it->second.get();
}

storage::MemDisk* Cluster::disk(int id) {
  MutexLock lock(&mu_);
  auto it = disks_.find(id);
  return it == disks_.end() ? nullptr : it->second.get();
}

std::vector<int> Cluster::BrokerIds() const {
  MutexLock lock(&mu_);
  std::vector<int> out;
  for (const auto& [id, broker] : brokers_) out.push_back(id);
  return out;
}

std::vector<int> Cluster::AliveBrokerIds() const {
  // Query liveness after dropping mu_: Broker::alive() takes the broker's
  // lock, and brokers call back into Cluster accessors while holding it
  // (Broker::mu_ -> Cluster::mu_), so the reverse order would deadlock.
  std::vector<std::pair<int, Broker*>> brokers;
  {
    MutexLock lock(&mu_);
    brokers.reserve(brokers_.size());
    for (const auto& [id, broker] : brokers_) {
      brokers.emplace_back(id, broker.get());
    }
  }
  std::vector<int> out;
  for (const auto& [id, broker] : brokers) {
    if (broker->alive()) out.push_back(id);
  }
  return out;
}

Status Cluster::StopBroker(int id) {
  Broker* b = broker(id);
  if (b == nullptr) return Status::NotFound("no such broker");
  b->Stop();
  return Status::OK();
}

Status Cluster::RestartBroker(int id) {
  storage::MemDisk* disk;
  {
    MutexLock lock(&mu_);
    auto it = disks_.find(id);
    if (it == disks_.end()) return Status::NotFound("no such broker");
    disk = it->second.get();
    // The old Broker object is the "crashed process"; replace it with a new
    // one over the surviving disk.
    brokers_[id] =
        std::make_unique<Broker>(id, this, disk, clock_, config_.broker);
  }
  Broker* b = broker(id);
  LIQUID_RETURN_NOT_OK(b->Start());
  // Resume hosted partitions from the cluster metadata.
  for (const std::string& topic : Topics()) {
    auto config = GetTopicConfig(topic);
    if (!config.ok()) continue;
    auto partitions = PartitionsOf(topic);
    if (!partitions.ok()) continue;
    for (const TopicPartition& tp : *partitions) {
      auto state = GetPartitionState(tp);
      if (!state.ok()) continue;
      if (std::find(state->replicas.begin(), state->replicas.end(), id) ==
          state->replicas.end()) {
        continue;
      }
      Status st = state->leader == id ? b->BecomeLeader(tp, *state, *config)
                                      : b->BecomeFollower(tp, *state, *config);
      if (!st.ok()) {
        LIQUID_LOG_WARN << "restart: resume " << tp.ToString() << " on broker "
                        << id << " failed: " << st.ToString();
      }
    }
  }
  return Status::OK();
}

void Cluster::ReplicationTick() {
  for (int id : AliveBrokerIds()) {
    Broker* b = broker(id);
    if (b == nullptr) continue;
    // Periodic: a failed pass is retried on the next tick; log so repeated
    // failures are visible rather than silently stalling replication.
    if (Status st = b->ReplicateFromLeaders(); !st.ok()) {
      LIQUID_LOG_WARN << "replication tick failed on broker " << id << ": "
                      << st.ToString();
    }
  }
}

void Cluster::RunLogMaintenance() {
  for (int id : AliveBrokerIds()) {
    Broker* b = broker(id);
    if (b == nullptr) continue;
    // Periodic, same retry-next-tick contract as replication.
    if (Status st = b->RunLogMaintenance(); !st.ok()) {
      LIQUID_LOG_WARN << "log maintenance failed on broker " << id << ": "
                      << st.ToString();
    }
  }
}

void Cluster::StartReplicationThread(int interval_ms) {
  if (replication_running_.exchange(true)) return;
  replication_thread_ = std::thread([this, interval_ms] {
    while (replication_running_.load()) {
      ReplicationTick();
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  });
}

void Cluster::StopReplicationThread() {
  if (!replication_running_.exchange(false)) return;
  if (replication_thread_.joinable()) replication_thread_.join();
}

int Cluster::ControllerId() const {
  auto data = const_cast<coord::CoordinationService&>(coord_).Get(
      paths::Controller());
  if (!data.ok()) return -1;
  return std::atoi(data->c_str());
}

}  // namespace liquid::messaging
