#ifndef LIQUID_MESSAGING_BROKER_H_
#define LIQUID_MESSAGING_BROKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "coord/coordination_service.h"
#include "coord/leader_election.h"
#include "messaging/metadata.h"
#include "messaging/quota.h"
#include "storage/disk.h"
#include "storage/log.h"
#include "storage/page_cache.h"

namespace liquid::messaging {

class Cluster;
class Controller;

/// Broker tuning knobs.
struct BrokerConfig {
  storage::PageCacheConfig page_cache;
  /// Default cap on fetch response payloads.
  size_t fetch_max_bytes = 1 << 20;
};

/// One node of the messaging layer (§3.1): hosts partitions of topics as
/// replicated append-only logs, answers produce/fetch requests, replicates as
/// leader or follower, and participates in controller election.
///
/// "RPCs" are direct method calls routed through the Cluster; the protocol
/// semantics (leader checks, epochs, high-watermark, ISR membership) are the
/// real ones.
class Broker {
 public:
  Broker(int id, Cluster* cluster, storage::Disk* disk, Clock* clock,
         BrokerConfig config);
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  int id() const { return id_; }

  /// Registers in the coordination service and contends for the controller
  /// role.
  Status Start();

  /// Simulates a crash: the coordination session expires (triggering
  /// controller failover handling) and all requests fail with Unavailable.
  void Stop();

  bool alive() const;

  // ---- Controller/admin-facing ----

  /// Makes this broker the leader of `tp` with the given state.
  Status BecomeLeader(const TopicPartition& tp, const PartitionState& state,
                      const TopicConfig& config);

  /// Makes this broker a follower of `tp`; truncates the local log to its
  /// high-watermark (uncommitted records may be discarded — the acks=1
  /// durability trade-off of §4.3).
  Status BecomeFollower(const TopicPartition& tp, const PartitionState& state,
                        const TopicConfig& config);

  /// Stops hosting `tp` (partition reassignment / decommission); optionally
  /// deletes its on-disk log and high-watermark checkpoint.
  Status StopReplica(const TopicPartition& tp, bool delete_data);

  // ---- Client-facing ----

  /// Appends `records` to the partition (leader only). For AckMode::kAll the
  /// call synchronously replicates to all ISR followers and fails with
  /// Unavailable if fewer than min_insync_replicas are in sync.
  /// `producer_id`/`first_sequence` enable idempotent deduplication;
  /// a non-empty `client_id` is charged against its byte-rate quota and the
  /// request is throttled when over it (§4.5 multi-tenancy).
  Result<ProduceResponse> Produce(const TopicPartition& tp,
                                  std::vector<storage::Record> records,
                                  AckMode acks,
                                  int64_t producer_id = storage::kNoProducerId,
                                  int32_t first_sequence = -1,
                                  const std::string& client_id = "");

  /// Reads records starting at `offset`. Consumers (`replica_id < 0`) see only
  /// committed data (below the high-watermark); replica fetches see the full
  /// log and advance the leader's view of the follower (possibly expanding
  /// the ISR and the high-watermark).
  /// `read_committed` hides transactional data until its transaction commits
  /// (records are clamped to the last-stable-offset, aborted data and
  /// control markers are filtered out) — the exactly-once extension the
  /// paper calls an "ongoing effort" (§4.3).
  Result<FetchResponse> Fetch(const TopicPartition& tp, int64_t offset,
                              size_t max_bytes, int replica_id = -1,
                              const std::string& client_id = "",
                              bool read_committed = false);

  // ---- Transactions (leader-side partition state) ----

  /// Marks the start of `pid`'s transaction on this partition: data appended
  /// by `pid` from the current log end until the marker is transactional.
  Status BeginPartitionTxn(const TopicPartition& tp, int64_t pid);

  /// Appends the commit/abort control marker for `pid` and resolves its
  /// transactional range (aborted ranges are filtered from read_committed
  /// fetches).
  Status WriteTxnMarker(const TopicPartition& tp, int64_t pid, bool committed);

  /// Last stable offset: committed data below every ongoing transaction.
  Result<int64_t> LastStableOffset(const TopicPartition& tp);

  /// KIP-101 reconciliation query (leader side): for the requester's last
  /// known epoch, returns {largest local epoch <= requested, that epoch's end
  /// offset}. A new follower truncates to this boundary, which removes any
  /// divergent suffix it accepted from a deposed leader — even one below the
  /// new leader's log end, where a plain min(LEO, LEO) cannot see it.
  Result<std::pair<int, int64_t>> EndOffsetForEpoch(const TopicPartition& tp,
                                                    int epoch);

  /// First offset with timestamp >= ts_ms (metadata-based rewind, §3.1).
  Result<int64_t> OffsetForTimestamp(const TopicPartition& tp, int64_t ts_ms);

  /// {log start offset, high watermark} visible to consumers.
  Result<std::pair<int64_t, int64_t>> OffsetBounds(const TopicPartition& tp);

  // ---- Replication ----

  /// Push-path append from the leader (synchronous acks=all replication).
  Status AppendAsFollower(const TopicPartition& tp,
                          const std::vector<storage::Record>& records,
                          int leader_epoch, int64_t leader_hw);

  /// Pull path: every follower partition fetches once from its leader
  /// (catch-up for acks<all and for restarted brokers).
  Status ReplicateFromLeaders();

  // ---- Maintenance ----

  /// Applies retention and compaction to every hosted log (§4.1).
  Status RunLogMaintenance();

  Result<storage::CompactionStats> CompactPartition(const TopicPartition& tp);

  // ---- Introspection ----

  Result<int64_t> LogEndOffset(const TopicPartition& tp);
  Result<int64_t> HighWatermark(const TopicPartition& tp);
  std::vector<TopicPartition> HostedPartitions() const;
  bool HostsPartition(const TopicPartition& tp) const;
  bool IsLeaderFor(const TopicPartition& tp) const;
  bool IsController() const;

  storage::PageCache* page_cache() { return page_cache_.get(); }
  MetricsRegistry* metrics() { return &metrics_; }
  QuotaManager* quotas() { return &quotas_; }
  storage::Disk* disk() { return disk_; }

 private:
  struct AbortedRange {
    int64_t pid;
    int64_t first_offset;
    int64_t last_offset;  // The abort marker's offset (exclusive bound).
  };

  struct Replica {
    TopicConfig config;
    std::unique_ptr<storage::Log> log;
    bool is_leader = false;
    int leader = -1;
    int leader_epoch = -1;
    int64_t high_watermark = 0;
    std::vector<int> isr;
    // Leader-side view of follower log-end offsets.
    std::map<int, int64_t> follower_leo;
    // Idempotent-producer dedup: last sequence accepted per producer id.
    std::unordered_map<int64_t, int32_t> producer_last_seq;
    // Transactions: pid -> first offset of the ongoing transaction.
    std::map<int64_t, int64_t> ongoing_txns;
    std::vector<AbortedRange> aborted_ranges;
    // Leader-epoch cache (KIP-101): (epoch, start offset of that epoch),
    // ascending; persisted to "<tp>.epochs".
    std::vector<std::pair<int, int64_t>> epoch_cache;
  };

  /// min(first offset over ongoing transactions, high watermark).
  /// (Static helpers on a Replica cannot name the owning broker's mu_ in a
  /// REQUIRES clause; callers reach the Replica via FindReplicaLocked, which
  /// already demands the lock.)
  static int64_t LastStableOffsetLocked(const Replica& replica);

  // Replica lookup; all per-replica mutation happens under mu_.
  Result<Replica*> FindReplicaLocked(const TopicPartition& tp) REQUIRES(mu_);
  Status EnsureLogLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(mu_);
  /// Recomputes the leader HW = min(LEO over ISR members with known LEO).
  void AdvanceHighWatermarkLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(mu_);
  /// Removes `follower` from the ISR and publishes the shrunk state.
  void ShrinkIsrLocked(const TopicPartition& tp, Replica* replica, int follower)
      REQUIRES(mu_);
  void MaybeExpandIsrLocked(const TopicPartition& tp, Replica* replica,
                            int follower) REQUIRES(mu_);
  void PublishIsrLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(mu_);
  Status LoadHighWatermarkLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(mu_);
  void StoreHighWatermarkLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(mu_);
  Status LoadEpochCacheLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(mu_);
  void StoreEpochCacheLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(mu_);
  /// Records that `epoch` starts at `start_offset` (no-op if already known).
  void NoteEpochLocked(const TopicPartition& tp, Replica* replica, int epoch,
                       int64_t start_offset) REQUIRES(mu_);
  /// Drops cache entries at/after `offset` after a truncation.
  void TrimEpochCacheLocked(const TopicPartition& tp, Replica* replica,
                            int64_t offset) REQUIRES(mu_);
  /// The epoch of the last record in the local log (-1 if empty).
  static int LastLocalEpochLocked(const Replica& replica);

  const int id_;
  Cluster* cluster_;
  storage::Disk* disk_;
  Clock* clock_;
  BrokerConfig config_;

  std::unique_ptr<storage::PageCache> page_cache_;
  MetricsRegistry metrics_;
  QuotaManager quotas_;

  // Cached handles into MetricsRegistry::Default() ("liquid.broker.<id>.*"),
  // resolved once in the constructor so the produce/fetch hot paths never
  // re-do a name lookup. The registry never erases entries, so the pointers
  // remain valid for the process lifetime.
  Counter* produce_records_ = nullptr;
  Counter* produce_bytes_ = nullptr;
  Counter* fetch_records_ = nullptr;
  Counter* replicated_records_ = nullptr;
  Histogram* produce_us_ = nullptr;
  Histogram* fetch_us_ = nullptr;

  // Recursive because coordination-service watches re-enter the broker on the
  // firing thread: PublishIsrLocked -> coord Set -> watch -> Controller ->
  // BecomeLeader on this same broker, all while mu_ is held.
  mutable RecursiveMutex mu_;
  bool alive_ GUARDED_BY(mu_) = false;
  int64_t session_id_ GUARDED_BY(mu_) = 0;
  std::map<TopicPartition, Replica> replicas_ GUARDED_BY(mu_);
  std::unique_ptr<coord::LeaderElection> election_ GUARDED_BY(mu_);
  // shared_ptr: the election callback starts the controller outside mu_
  // (election walks the whole cluster) while Stop() may reset this member.
  std::shared_ptr<Controller> controller_ GUARDED_BY(mu_);
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_BROKER_H_
