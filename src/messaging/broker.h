#ifndef LIQUID_MESSAGING_BROKER_H_
#define LIQUID_MESSAGING_BROKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "coord/coordination_service.h"
#include "coord/leader_election.h"
#include "messaging/metadata.h"
#include "messaging/quota.h"
#include "storage/disk.h"
#include "storage/log.h"
#include "storage/page_cache.h"
#include "storage/record_batch.h"

namespace liquid::messaging {

class Cluster;
class Controller;

/// Broker tuning knobs.
struct BrokerConfig {
  storage::PageCacheConfig page_cache;
  /// Default cap on fetch response payloads.
  size_t fetch_max_bytes = 1 << 20;
};

/// One node of the messaging layer (§3.1): hosts partitions of topics as
/// replicated append-only logs, answers produce/fetch requests, replicates as
/// leader or follower, and participates in controller election.
///
/// "RPCs" are direct method calls routed through the Cluster; the protocol
/// semantics (leader checks, epochs, high-watermark, ISR membership) are the
/// real ones.
///
/// Locking is sharded by partition (see DESIGN.md §messaging): a broker-level
/// shared_mutex (map_mu_) guards only replica-map membership, liveness and
/// controller state; every Replica owns a Mutex guarding its log and
/// replication state. Hot-path requests take map_mu_ shared (concurrent with
/// each other) and then exactly one replica lock, so producers on different
/// partitions never contend. No broker lock is ever held across a
/// coordination-service or broker-to-broker call.
class Broker {
 public:
  Broker(int id, Cluster* cluster, storage::Disk* disk, Clock* clock,
         BrokerConfig config);
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  int id() const { return id_; }

  /// Registers in the coordination service and contends for the controller
  /// role.
  Status Start();

  /// Simulates a crash: the coordination session expires (triggering
  /// controller failover handling) and all requests fail with Unavailable.
  void Stop();

  bool alive() const;

  // ---- Controller/admin-facing ----

  /// Makes this broker the leader of `tp` with the given state.
  Status BecomeLeader(const TopicPartition& tp, const PartitionState& state,
                      const TopicConfig& config);

  /// Makes this broker a follower of `tp`; truncates the local log to its
  /// high-watermark (uncommitted records may be discarded — the acks=1
  /// durability trade-off of §4.3).
  Status BecomeFollower(const TopicPartition& tp, const PartitionState& state,
                        const TopicConfig& config);

  /// Stops hosting `tp` (partition reassignment / decommission); optionally
  /// deletes its on-disk log and high-watermark checkpoint.
  Status StopReplica(const TopicPartition& tp, bool delete_data);

  // ---- Client-facing ----

  /// Appends `records` to the partition (leader only). For AckMode::kAll the
  /// call synchronously replicates to all ISR followers and fails with
  /// Unavailable if fewer than min_insync_replicas are in sync.
  /// `producer_id`/`first_sequence` enable idempotent deduplication;
  /// a non-empty `client_id` is charged against its byte-rate quota and the
  /// response carries the throttle delay the caller must observe before its
  /// next request (§4.5 multi-tenancy) — the broker itself never sleeps.
  LIQUID_HOT_PATH
  Result<ProduceResponse> Produce(const TopicPartition& tp,
                                  std::vector<storage::Record> records,
                                  AckMode acks,
                                  int64_t producer_id = storage::kNoProducerId,
                                  int32_t first_sequence = -1,
                                  const std::string& client_id = "");

  /// Reads records starting at `offset`. Consumers (`replica_id < 0`) see only
  /// committed data (below the high-watermark); replica fetches see the full
  /// log — returned as the shared encoded buffer (FetchResponse::batch, the
  /// encode-once path) — and advance the leader's view of the follower
  /// (possibly expanding the ISR and the high-watermark).
  /// `read_committed` hides transactional data until its transaction commits
  /// (records are clamped to the last-stable-offset, aborted data and
  /// control markers are filtered out) — the exactly-once extension the
  /// paper calls an "ongoing effort" (§4.3).
  LIQUID_HOT_PATH
  Result<FetchResponse> Fetch(const TopicPartition& tp, int64_t offset,
                              size_t max_bytes, int replica_id = -1,
                              const std::string& client_id = "",
                              bool read_committed = false);

  // ---- Transactions (leader-side partition state) ----

  /// Marks the start of `pid`'s transaction on this partition: data appended
  /// by `pid` from the current log end until the marker is transactional.
  Status BeginPartitionTxn(const TopicPartition& tp, int64_t pid);

  /// Appends the commit/abort control marker for `pid` and resolves its
  /// transactional range (aborted ranges are filtered from read_committed
  /// fetches).
  Status WriteTxnMarker(const TopicPartition& tp, int64_t pid, bool committed);

  /// Last stable offset: committed data below every ongoing transaction.
  Result<int64_t> LastStableOffset(const TopicPartition& tp);

  /// KIP-101 reconciliation query (leader side): for the requester's last
  /// known epoch, returns {largest local epoch <= requested, that epoch's end
  /// offset}. A new follower truncates to this boundary, which removes any
  /// divergent suffix it accepted from a deposed leader — even one below the
  /// new leader's log end, where a plain min(LEO, LEO) cannot see it.
  Result<std::pair<int, int64_t>> EndOffsetForEpoch(const TopicPartition& tp,
                                                    int epoch);

  /// First offset with timestamp >= ts_ms (metadata-based rewind, §3.1).
  Result<int64_t> OffsetForTimestamp(const TopicPartition& tp, int64_t ts_ms);

  /// {log start offset, high watermark} visible to consumers.
  Result<std::pair<int64_t, int64_t>> OffsetBounds(const TopicPartition& tp);

  // ---- Replication ----

  /// Push-path append from the leader (synchronous acks=all replication).
  Status AppendAsFollower(const TopicPartition& tp,
                          const std::vector<storage::Record>& records,
                          int leader_epoch, int64_t leader_hw);

  /// Encode-once push path: the leader forwards the exact bytes it appended
  /// locally; frames already stored here (offset < local end) are skipped by
  /// slicing the shared buffer, never by re-encoding.
  Status AppendEncodedAsFollower(const TopicPartition& tp,
                                 const storage::EncodedBatch& batch,
                                 int leader_epoch, int64_t leader_hw);

  /// Pull path: every follower partition fetches once from its leader
  /// (catch-up for acks<all and for restarted brokers).
  Status ReplicateFromLeaders();

  // ---- Maintenance ----

  /// Applies retention and compaction to every hosted log (§4.1).
  Status RunLogMaintenance();

  Result<storage::CompactionStats> CompactPartition(const TopicPartition& tp);

  // ---- Introspection ----

  Result<int64_t> LogEndOffset(const TopicPartition& tp);
  Result<int64_t> HighWatermark(const TopicPartition& tp);
  std::vector<TopicPartition> HostedPartitions() const;
  bool HostsPartition(const TopicPartition& tp) const;
  bool IsLeaderFor(const TopicPartition& tp) const;
  bool IsController() const;

  storage::PageCache* page_cache() { return page_cache_.get(); }
  MetricsRegistry* metrics() { return &metrics_; }
  QuotaManager* quotas() { return &quotas_; }
  storage::Disk* disk() { return disk_; }

 private:
  struct AbortedRange {
    int64_t pid;
    int64_t first_offset;
    int64_t last_offset;  // The abort marker's offset (exclusive bound).
  };

  /// One hosted partition. Each replica owns its lock: requests for
  /// different partitions of the same broker proceed fully in parallel.
  /// Non-movable (the Mutex pins it); replicas_ is a node-based map, so
  /// entries are constructed in place and never relocate.
  struct Replica {
    /// Guards everything below. Acquired after map_mu_ (held shared) and
    /// before any Log-internal lock; never held across coordination-service
    /// or broker-to-broker calls (snapshot-then-call rule).
    mutable Mutex mu;

    TopicConfig config GUARDED_BY(mu);
    std::unique_ptr<storage::Log> log GUARDED_BY(mu);
    bool is_leader GUARDED_BY(mu) = false;
    int leader GUARDED_BY(mu) = -1;
    int leader_epoch GUARDED_BY(mu) = -1;
    int64_t high_watermark GUARDED_BY(mu) = 0;
    std::vector<int> isr GUARDED_BY(mu);
    // Leader-side view of follower log-end offsets.
    std::map<int, int64_t> follower_leo GUARDED_BY(mu);
    // Idempotent-producer dedup: last sequence accepted per producer id.
    std::unordered_map<int64_t, int32_t> producer_last_seq GUARDED_BY(mu);
    // Transactions: pid -> first offset of the ongoing transaction.
    std::map<int64_t, int64_t> ongoing_txns GUARDED_BY(mu);
    std::vector<AbortedRange> aborted_ranges GUARDED_BY(mu);
    // Leader-epoch cache (KIP-101): (epoch, start offset of that epoch),
    // ascending; persisted to "<tp>.epochs".
    std::vector<std::pair<int, int64_t>> epoch_cache GUARDED_BY(mu);
    // Cached handle for "liquid.broker.<id>.partition.<tp>.append_records"
    // in the process-wide registry, resolved once when the log opens.
    Counter* append_records GUARDED_BY(mu) = nullptr;
  };

  /// min(first offset over ongoing transactions, high watermark).
  static int64_t LastStableOffsetLocked(const Replica& replica)
      REQUIRES(replica.mu);

  /// Replica lookup under the membership lock (shared suffices: the map is
  /// not mutated and per-replica state is behind the replica's own lock).
  /// Callers hold map_mu_ for the whole per-replica operation, which is what
  /// keeps the Replica* alive (StopReplica needs map_mu_ exclusive to erase).
  Result<Replica*> FindReplicaShared(const TopicPartition& tp)
      REQUIRES_SHARED(map_mu_);

  Status EnsureLogLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(replica->mu);
  /// Recomputes the leader HW = min(LEO over ISR members with known LEO).
  void AdvanceHighWatermarkLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(replica->mu);
  /// Removes `follower` from the ISR; returns true if the ISR changed (the
  /// caller publishes the new ISR via PublishIsr AFTER unlocking — publishing
  /// talks to the coordination service, whose watches re-enter the broker).
  bool ShrinkIsrLocked(const TopicPartition& tp, Replica* replica, int follower)
      REQUIRES(replica->mu);
  /// Adds a caught-up follower to the ISR; returns true if it changed (same
  /// publish-after-unlock contract as ShrinkIsrLocked).
  bool MaybeExpandIsrLocked(const TopicPartition& tp, Replica* replica,
                            int follower) REQUIRES(replica->mu);
  /// Publishes `isr` for `tp` to the coordination service. Must be called
  /// with NO broker lock held: the coord write fires watches that re-enter
  /// brokers on this thread (controller election, leadership changes).
  void PublishIsr(const TopicPartition& tp, const std::vector<int>& isr);
  /// Rebuilds the idempotent-producer dedup map (producer_last_seq) by
  /// scanning the log. Called when a replica becomes leader with no dedup
  /// state — a restarted broker or a promoted follower — so that mid-stream
  /// producers are deduplicated instead of rejected as out-of-order
  /// (DESIGN.md §7: the chaos soak found exactly this gap).
  Status RebuildProducerStateLocked(Replica* replica) REQUIRES(replica->mu);

  Status LoadHighWatermarkLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(replica->mu);
  void StoreHighWatermarkLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(replica->mu);
  Status LoadEpochCacheLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(replica->mu);
  void StoreEpochCacheLocked(const TopicPartition& tp, Replica* replica)
      REQUIRES(replica->mu);
  /// Records that `epoch` starts at `start_offset` (no-op if already known).
  void NoteEpochLocked(const TopicPartition& tp, Replica* replica, int epoch,
                       int64_t start_offset) REQUIRES(replica->mu);
  /// Drops cache entries at/after `offset` after a truncation.
  void TrimEpochCacheLocked(const TopicPartition& tp, Replica* replica,
                            int64_t offset) REQUIRES(replica->mu);
  /// The epoch of the last record in the local log (-1 if empty).
  static int LastLocalEpochLocked(const Replica& replica) REQUIRES(replica.mu);

  const int id_;
  Cluster* cluster_;
  storage::Disk* const disk_;
  Clock* const clock_;
  const BrokerConfig config_;

  const std::unique_ptr<storage::PageCache> page_cache_;
  MetricsRegistry metrics_;
  QuotaManager quotas_;

  // Cached handles into MetricsRegistry::Default() ("liquid.broker.<id>.*")
  // and this broker's own registry, resolved once in the constructor so the
  // produce/fetch hot paths never re-do a name lookup (the registry lookup
  // takes a global lock — a cross-partition serialization point the sharded
  // hot path must not touch). Registries never erase entries, so the
  // pointers remain valid for the process lifetime.
  Counter* produce_records_ = nullptr;
  Counter* produce_bytes_ = nullptr;
  Counter* fetch_records_ = nullptr;
  Counter* replicated_records_ = nullptr;
  Histogram* produce_us_ = nullptr;
  Histogram* fetch_us_ = nullptr;
  /// Time spent acquiring the replica lock in Produce — the direct
  /// observable of broker lock contention ("liquid.broker.<id>.
  /// produce_lock_wait_us", see OBSERVABILITY.md).
  Histogram* produce_lock_wait_us_ = nullptr;
  // Per-broker registry counters (kept for test/introspection compatibility).
  Counter* broker_produce_records_ = nullptr;
  Counter* broker_fetch_records_ = nullptr;
  Counter* quota_produce_throttles_ = nullptr;
  Counter* quota_fetch_throttles_ = nullptr;
  Counter* produce_duplicates_dropped_ = nullptr;
  // ISR churn counters, cached so ShrinkIsrLocked (reachable from the produce
  // hot path via acks=all failure handling) never takes the registry lock.
  Counter* isr_shrinks_ = nullptr;
  Counter* isr_expands_ = nullptr;

  /// Membership lock: guards which replicas exist plus broker liveness and
  /// controller/election state. Request paths hold it SHARED for the whole
  /// per-replica operation (pinning the Replica) and acquire the replica's
  /// own lock under it; only Start/Stop, Become*, and StopReplica take it
  /// exclusive. Lock order: map_mu_ -> Replica::mu -> Log internals.
  mutable SharedMutex map_mu_;
  bool alive_ GUARDED_BY(map_mu_) = false;
  int64_t session_id_ GUARDED_BY(map_mu_) = 0;
  // node-based: Replica is non-movable and pointers stay stable while
  // map_mu_ is held (shared or exclusive).
  std::map<TopicPartition, Replica> replicas_ GUARDED_BY(map_mu_);
  std::unique_ptr<coord::LeaderElection> election_ GUARDED_BY(map_mu_);
  // shared_ptr: the election callback starts the controller outside map_mu_
  // (election walks the whole cluster) while Stop() may reset this member.
  std::shared_ptr<Controller> controller_ GUARDED_BY(map_mu_);
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_BROKER_H_
