#ifndef LIQUID_MESSAGING_CLUSTER_H_
#define LIQUID_MESSAGING_CLUSTER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "coord/coordination_service.h"
#include "messaging/access_control.h"
#include "messaging/broker.h"
#include "messaging/metadata.h"
#include "storage/disk.h"

namespace liquid::messaging {

/// Cluster-wide configuration.
struct ClusterConfig {
  int num_brokers = 3;
  BrokerConfig broker;
  /// Latency model of each broker's simulated disk.
  storage::DiskLatencyModel disk_latency;
};

/// The messaging-layer cluster (Fig. 3): brokers, the coordination service,
/// and topic administration. Brokers' disks are owned here so that a broker
/// "process" can crash (Stop) and restart against its surviving disk.
///
/// Replication catch-up (the follower pull path) is driven either manually
/// via ReplicationTick() (deterministic tests) or by a background thread.
class Cluster {
 public:
  Cluster(ClusterConfig config, Clock* clock);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts all brokers (one becomes controller).
  Status Start();

  /// Creates a topic: assigns partition replicas round-robin over alive
  /// brokers, records state in the coordination service, and instructs the
  /// chosen brokers to become leaders/followers.
  Status CreateTopic(const std::string& name, const TopicConfig& config);

  Result<TopicConfig> GetTopicConfig(const std::string& topic) const;
  std::vector<std::string> Topics() const;
  /// All partitions of `topic` (NotFound if the topic does not exist).
  Result<std::vector<TopicPartition>> PartitionsOf(const std::string& topic) const;

  Result<PartitionState> GetPartitionState(const TopicPartition& tp) const;

  /// The broker currently leading `tp`, or NotLeader/Unavailable.
  Result<Broker*> LeaderFor(const TopicPartition& tp);

  Broker* broker(int id);
  /// The simulated disk behind broker `id` (benches and crash tests install
  /// fault hooks / inspect fsync counts through this). Outlives the broker:
  /// the disk survives StopBroker so a RestartBroker can recover from it.
  storage::MemDisk* disk(int id);
  std::vector<int> BrokerIds() const;
  std::vector<int> AliveBrokerIds() const;

  /// Simulates a broker crash (controller re-elects partition leaders).
  Status StopBroker(int id);

  /// Restarts a stopped broker against its surviving disk; it resumes its
  /// replicas as followers and catches up through replication.
  Status RestartBroker(int id);

  /// One replication pull pass on every alive broker.
  void ReplicationTick();

  /// Retention + compaction pass on every alive broker.
  void RunLogMaintenance();

  /// Background replication pump (optional; tests usually tick manually).
  void StartReplicationThread(int interval_ms);
  void StopReplicationThread();

  coord::CoordinationService* coord() { return &coord_; }
  Clock* clock() { return clock_; }
  /// Cluster-wide ACLs, enforced by every broker on client requests (§2.1).
  AccessController* acls() { return &acls_; }

  /// The id of the current controller broker, or -1.
  int ControllerId() const;

 private:
  const ClusterConfig config_;
  Clock* const clock_;
  coord::CoordinationService coord_;
  AccessController acls_;

  mutable Mutex mu_;
  std::map<int, std::unique_ptr<storage::MemDisk>> disks_ GUARDED_BY(mu_);
  std::map<int, std::unique_ptr<Broker>> brokers_ GUARDED_BY(mu_);
  std::map<std::string, TopicConfig> topics_ GUARDED_BY(mu_);

  // liquid-lint: allow(guarded-by): written only by Start/StopReplicationThread, which serialize through the replication_running_ exchange.
  std::thread replication_thread_;
  std::atomic<bool> replication_running_{false};
};

}  // namespace liquid::messaging

#endif  // LIQUID_MESSAGING_CLUSTER_H_
