#include "messaging/quota.h"

#include <algorithm>

namespace liquid::messaging {

void QuotaManager::SetQuota(const std::string& client_id,
                            int64_t bytes_per_sec) {
  MutexLock lock(&mu_);
  if (bytes_per_sec <= 0) {
    buckets_.erase(client_id);
    return;
  }
  Bucket bucket;
  bucket.bytes_per_sec = bytes_per_sec;
  // Start with one second's burst allowance.
  bucket.tokens = static_cast<double>(bytes_per_sec);
  bucket.last_refill_ms = clock_->NowMs();
  buckets_[client_id] = bucket;
}

int64_t QuotaManager::Charge(const std::string& client_id, int64_t bytes) {
  if (client_id.empty()) return 0;
  MutexLock lock(&mu_);
  auto it = buckets_.find(client_id);
  if (it == buckets_.end()) return 0;
  Bucket& bucket = it->second;

  const int64_t now = clock_->NowMs();
  const int64_t elapsed_ms = std::max<int64_t>(0, now - bucket.last_refill_ms);
  bucket.last_refill_ms = now;
  bucket.tokens = std::min(
      static_cast<double>(bucket.bytes_per_sec),  // Burst cap: 1s worth.
      bucket.tokens + static_cast<double>(bucket.bytes_per_sec) *
                          static_cast<double>(elapsed_ms) / 1000.0);

  bucket.tokens -= static_cast<double>(bytes);
  if (bucket.tokens >= 0) return 0;
  // Debt: the client must wait until the bucket refills past zero.
  ++throttled_requests_;
  const double debt = -bucket.tokens;
  return static_cast<int64_t>(debt * 1000.0 /
                              static_cast<double>(bucket.bytes_per_sec)) +
         1;
}

int64_t QuotaManager::throttled_requests() const {
  MutexLock lock(&mu_);
  return throttled_requests_;
}

}  // namespace liquid::messaging
