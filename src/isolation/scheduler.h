#ifndef LIQUID_ISOLATION_SCHEDULER_H_
#define LIQUID_ISOLATION_SCHEDULER_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "isolation/container.h"

namespace liquid::isolation {

/// Executes work items from multiple containers on a shared node, either with
/// weighted-fair scheduling (isolation ON: CFS-style minimum-vruntime pick) or
/// naive FIFO (isolation OFF: whoever enqueues most, wins). This is the
/// in-process model of "ETL-as-a-service" resource isolation (§3.2, §4.4):
/// a resource-hungry job cannot degrade a well-behaved one beyond its share.
class FairScheduler {
 public:
  using WorkItem = std::function<void()>;

  /// `isolation_enabled` selects fair (true) vs FIFO (false) dispatch.
  explicit FairScheduler(bool isolation_enabled, Clock* clock);

  /// Registers a container; returns its id.
  int RegisterContainer(ContainerConfig config);

  Container* container(int id);

  /// Queues one work item for `container_id`.
  Status Submit(int container_id, WorkItem item);

  /// Dispatches work until all queues are empty or `budget_ms` of wall time
  /// elapses. Returns per-container completed item counts.
  std::map<int, int64_t> RunUntilIdle(int64_t budget_ms = -1);

  /// Dispatches exactly one item (false if nothing queued).
  bool RunOne();

  int64_t completed(int container_id) const;

 private:
  struct Entry {
    std::unique_ptr<Container> container;
    std::deque<WorkItem> queue;
    int64_t completed = 0;
    int64_t arrival_counter = 0;  // For FIFO mode.
  };

  /// Chooses the next container to run; -1 when all queues are empty.
  int PickNextLocked() REQUIRES(mu_);

  const bool isolation_enabled_;
  Clock* const clock_;

  mutable Mutex mu_;
  std::vector<Entry> entries_ GUARDED_BY(mu_);
  int64_t arrivals_ GUARDED_BY(mu_) = 0;
  // FIFO mode: global arrival order of (container, item).
  std::deque<int> fifo_order_ GUARDED_BY(mu_);
};

}  // namespace liquid::isolation

#endif  // LIQUID_ISOLATION_SCHEDULER_H_
