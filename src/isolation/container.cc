#include "isolation/container.h"

namespace liquid::isolation {

Status Container::ChargeMemory(int64_t bytes) {
  MutexLock lock(&mu_);
  if (memory_used_ + bytes > config_.memory_limit_bytes) {
    return Status::ResourceExhausted("container over memory limit: " +
                                     config_.name);
  }
  memory_used_ += bytes;
  return Status::OK();
}

void Container::ReleaseMemory(int64_t bytes) {
  MutexLock lock(&mu_);
  memory_used_ -= bytes;
  if (memory_used_ < 0) memory_used_ = 0;
}

int64_t Container::memory_used() const {
  MutexLock lock(&mu_);
  return memory_used_;
}

void Container::ChargeCpuUs(int64_t micros) {
  MutexLock lock(&mu_);
  cpu_used_us_ += micros;
}

int64_t Container::cpu_used_us() const {
  MutexLock lock(&mu_);
  return cpu_used_us_;
}

double Container::vruntime() const {
  MutexLock lock(&mu_);
  const double share = config_.cpu_share <= 0 ? 0.001 : config_.cpu_share;
  return static_cast<double>(cpu_used_us_) / share;
}

}  // namespace liquid::isolation
