#ifndef LIQUID_ISOLATION_CONTAINER_H_
#define LIQUID_ISOLATION_CONTAINER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace liquid::isolation {

/// Resource budget of one container (the OS-level isolation of §4.4:
/// "the processing layer uses OS-level resource isolation, as realized by
/// Linux containers in Apache YARN, thus restricting the memory and CPU
/// resources of each job").
struct ContainerConfig {
  std::string name;
  /// Relative CPU weight (cgroup cpu.shares equivalent).
  double cpu_share = 1.0;
  /// Hard memory budget; allocations beyond it fail.
  int64_t memory_limit_bytes = 64 << 20;
};

/// Accounting handle for one job's container: memory charges are enforced,
/// CPU usage is metered and fed to the fair scheduler.
class Container {
 public:
  explicit Container(ContainerConfig config) : config_(std::move(config)) {}

  Container(const Container&) = delete;
  Container& operator=(const Container&) = delete;

  /// Attempts to reserve memory; ResourceExhausted above the limit.
  Status ChargeMemory(int64_t bytes);
  void ReleaseMemory(int64_t bytes);
  int64_t memory_used() const;

  /// Records consumed CPU time (scheduler bookkeeping).
  void ChargeCpuUs(int64_t micros);
  int64_t cpu_used_us() const;

  /// CFS-style virtual runtime: cpu_used / share. The scheduler always picks
  /// the runnable container with the smallest vruntime, so a container that
  /// burns CPU falls behind in priority instead of starving its neighbours.
  double vruntime() const;

  const ContainerConfig& config() const { return config_; }

 private:
  const ContainerConfig config_;
  mutable Mutex mu_;
  int64_t memory_used_ GUARDED_BY(mu_) = 0;
  int64_t cpu_used_us_ GUARDED_BY(mu_) = 0;
};

}  // namespace liquid::isolation

#endif  // LIQUID_ISOLATION_CONTAINER_H_
