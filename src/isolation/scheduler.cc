#include "isolation/scheduler.h"

#include <limits>

namespace liquid::isolation {

FairScheduler::FairScheduler(bool isolation_enabled, Clock* clock)
    : isolation_enabled_(isolation_enabled), clock_(clock) {}

int FairScheduler::RegisterContainer(ContainerConfig config) {
  MutexLock lock(&mu_);
  Entry entry;
  entry.container = std::make_unique<Container>(std::move(config));
  entries_.push_back(std::move(entry));
  return static_cast<int>(entries_.size()) - 1;
}

Container* FairScheduler::container(int id) {
  MutexLock lock(&mu_);
  if (id < 0 || id >= static_cast<int>(entries_.size())) return nullptr;
  return entries_[id].container.get();
}

Status FairScheduler::Submit(int container_id, WorkItem item) {
  MutexLock lock(&mu_);
  if (container_id < 0 || container_id >= static_cast<int>(entries_.size())) {
    return Status::InvalidArgument("no such container");
  }
  entries_[container_id].queue.push_back(std::move(item));
  if (!isolation_enabled_) fifo_order_.push_back(container_id);
  return Status::OK();
}

int FairScheduler::PickNextLocked() {
  if (isolation_enabled_) {
    // CFS: runnable container with the smallest vruntime.
    int best = -1;
    double best_vruntime = std::numeric_limits<double>::max();
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].queue.empty()) continue;
      const double vruntime = entries_[i].container->vruntime();
      if (vruntime < best_vruntime) {
        best_vruntime = vruntime;
        best = static_cast<int>(i);
      }
    }
    return best;
  }
  // FIFO: strict arrival order — a flood of items from a noisy container
  // delays everyone behind it.
  while (!fifo_order_.empty()) {
    const int id = fifo_order_.front();
    if (!entries_[id].queue.empty()) return id;
    fifo_order_.pop_front();
  }
  return -1;
}

bool FairScheduler::RunOne() {
  WorkItem item;
  Container* container = nullptr;
  int id;
  {
    MutexLock lock(&mu_);
    id = PickNextLocked();
    if (id < 0) return false;
    item = std::move(entries_[id].queue.front());
    entries_[id].queue.pop_front();
    if (!isolation_enabled_) fifo_order_.pop_front();
    container = entries_[id].container.get();
  }
  const int64_t start_us = clock_->NowUs();
  item();
  container->ChargeCpuUs(clock_->NowUs() - start_us);
  {
    MutexLock lock(&mu_);
    entries_[id].completed++;
  }
  return true;
}

std::map<int, int64_t> FairScheduler::RunUntilIdle(int64_t budget_ms) {
  const int64_t deadline =
      budget_ms < 0 ? std::numeric_limits<int64_t>::max()
                    : clock_->NowMs() + budget_ms;
  while (clock_->NowMs() < deadline) {
    if (!RunOne()) break;
  }
  std::map<int, int64_t> out;
  MutexLock lock(&mu_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    out[static_cast<int>(i)] = entries_[i].completed;
  }
  return out;
}

int64_t FairScheduler::completed(int container_id) const {
  MutexLock lock(&mu_);
  if (container_id < 0 || container_id >= static_cast<int>(entries_.size())) {
    return 0;
  }
  return entries_[container_id].completed;
}

}  // namespace liquid::isolation
