#include "core/architectures.h"

#include <cstdlib>
#include <map>

#include "messaging/broker.h"
#include "processing/operators.h"

namespace liquid::core {

namespace {

/// Counting task parameterized by the per-event weight (v1 = 1, v2 = 2).
class WeightedCounterTask : public processing::StreamTask {
 public:
  WeightedCounterTask(std::string store, int64_t weight)
      : store_name_(std::move(store)), weight_(weight) {}

  Status Init(processing::TaskContext* context) override {
    store_ = context->GetStore(store_name_);
    if (store_ == nullptr) return Status::InvalidArgument("missing store");
    return Status::OK();
  }

  Status Process(const messaging::ConsumerRecord& envelope,
                 processing::MessageCollector*,
                 processing::TaskCoordinator*) override {
    auto current = store_->Get(envelope.record.key);
    const int64_t count =
        (current.ok() ? std::strtoll(current->c_str(), nullptr, 10) : 0) +
        weight_;
    // liquid-lint: allow(hot-alloc): the serialized store value is the task's output; KeyValueStore::Put requires owned bytes.
    return store_->Put(envelope.record.key, std::to_string(count));
  }

 private:
  std::string store_name_;
  int64_t weight_;
  processing::KeyValueStore* store_ = nullptr;
};

/// Reads the whole store of a single-partition job into a map.
Result<std::map<std::string, int64_t>> DumpCounts(processing::Job* job,
                                                  const std::string& topic,
                                                  const std::string& store) {
  std::map<std::string, int64_t> out;
  processing::KeyValueStore* kv =
      job->GetStore(messaging::TopicPartition{topic, 0}, store);
  if (kv == nullptr) return out;  // Task never materialized (no data).
  LIQUID_RETURN_NOT_OK(kv->ForEach([&out](const Slice& key, const Slice& value) {
    out[key.ToString()] = std::strtoll(value.ToString().c_str(), nullptr, 10);
  }));
  return out;
}

int64_t CountCorrect(const std::map<std::string, int64_t>& served,
                     const std::map<std::string, int64_t>& truth) {
  int64_t correct = 0;
  for (const auto& [key, expected] : truth) {
    auto it = served.find(key);
    if (it != served.end() && it->second == expected) ++correct;
  }
  return correct;
}

}  // namespace

ArchitectureComparison::ArchitectureComparison(Liquid* liquid, int num_events,
                                               int num_keys)
    : liquid_(liquid), num_events_(num_events), num_keys_(num_keys) {}

Result<std::string> ArchitectureComparison::PublishInput(
    const std::string& run_tag) {
  const std::string feed = "arch-events-" + run_tag;
  FeedOptions options;
  options.partitions = 1;
  LIQUID_RETURN_NOT_OK(liquid_->CreateSourceFeed(feed, options));
  auto producer = liquid_->NewProducer();
  for (int i = 0; i < num_events_; ++i) {
    LIQUID_RETURN_NOT_OK(producer->Send(
        feed, storage::Record::KeyValue("k" + std::to_string(i % num_keys_),
                                        "1")));
  }
  LIQUID_RETURN_NOT_OK(producer->Flush());
  return feed;
}

Result<ArchitectureReport> ArchitectureComparison::RunLambda(
    dfs::DistributedFileSystem* fs, mapreduce::MapReduceEngine* engine) {
  ArchitectureReport report;
  report.architecture = "lambda";
  report.code_paths = 2;  // Batch logic + stream logic, maintained separately.
  report.total_keys = num_keys_;

  LIQUID_ASSIGN_OR_RETURN(std::string feed, PublishInput("lambda"));

  // Speed layer: nearline job with v1... upgraded to v2 logic for new data.
  processing::JobConfig speed_config;
  speed_config.name = "lambda-speed";
  speed_config.inputs = {feed};
  speed_config.stores = {{"counts", processing::StoreConfig::Kind::kInMemory,
                          /*changelog=*/false}};
  LIQUID_ASSIGN_OR_RETURN(
      processing::Job * speed,
      liquid_->SubmitJob(speed_config, [] {
        return std::make_unique<WeightedCounterTask>("counts", 2);
      }));
  LIQUID_ASSIGN_OR_RETURN(int64_t speed_processed, speed->RunUntilIdle());
  report.records_processed += speed_processed;

  // Batch layer: dump the feed to the DFS, then MapReduce with v2 logic —
  // a REIMPLEMENTATION of the same counting (the Lambda tax).
  auto consumer = liquid_->NewConsumer("lambda-dump", "dumper");
  LIQUID_RETURN_NOT_OK(consumer->Subscribe({feed}));
  std::vector<mapreduce::KeyValue> dump;
  while (true) {
    auto records = consumer->Poll(4096);
    if (!records.ok()) return records.status();
    if (records->empty()) break;
    for (const auto& envelope : *records) {
      dump.push_back(
          mapreduce::KeyValue{envelope.record.key, envelope.record.value});
    }
  }
  const std::string encoded = mapreduce::MapReduceEngine::EncodeRecords(dump);
  report.bytes_materialized += encoded.size();
  LIQUID_RETURN_NOT_OK(fs->WriteFile("/lambda/input/dump", encoded));

  mapreduce::MrJobConfig batch_config;
  batch_config.name = "lambda-batch";
  LIQUID_ASSIGN_OR_RETURN(
      mapreduce::MrJobStats batch_stats,
      engine->RunJob(
          batch_config, "/lambda/input", "/lambda/output",
          [](const mapreduce::KeyValue& kv) {
            return std::vector<mapreduce::KeyValue>{{kv.key, "2"}};  // v2.
          },
          [](const std::string&, const std::vector<std::string>& values) {
            int64_t sum = 0;
            for (const auto& v : values) sum += std::strtoll(v.c_str(), nullptr, 10);
            return std::to_string(sum);
          }));
  report.records_processed += batch_stats.input_records;
  report.bytes_materialized += batch_stats.dfs_bytes_written;
  // The speed layer kept running while the batch recomputed: fresh.
  report.serving_fresh_during_reprocess = true;

  // Serving: batch view wins (speed deltas would overlay newer offsets only).
  std::map<std::string, int64_t> served;
  for (const std::string& part : fs->ListFiles("/lambda/output")) {
    LIQUID_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(part));
    for (const auto& kv : mapreduce::MapReduceEngine::DecodeRecords(data)) {
      served[kv.key] = std::strtoll(kv.value.c_str(), nullptr, 10);
    }
  }
  std::map<std::string, int64_t> truth;
  for (int i = 0; i < num_keys_; ++i) {
    const int64_t raw = num_events_ / num_keys_ +
                        (i < num_events_ % num_keys_ ? 1 : 0);
    truth["k" + std::to_string(i)] = ExpectedCountV2(raw);
  }
  report.correct_keys = CountCorrect(served, truth);
  LIQUID_RETURN_NOT_OK(liquid_->StopJob("lambda-speed"));
  return report;
}

Result<ArchitectureReport> ArchitectureComparison::RunKappa() {
  ArchitectureReport report;
  report.architecture = "kappa";
  report.code_paths = 1;
  report.total_keys = num_keys_;

  LIQUID_ASSIGN_OR_RETURN(std::string feed, PublishInput("kappa"));

  // v1 job serves while it can.
  processing::JobConfig v1_config;
  v1_config.name = "kappa-v1";
  v1_config.inputs = {feed};
  v1_config.stores = {{"counts", processing::StoreConfig::Kind::kInMemory,
                       /*changelog=*/false}};
  LIQUID_ASSIGN_OR_RETURN(
      processing::Job * v1, liquid_->SubmitJob(v1_config, [] {
        return std::make_unique<WeightedCounterTask>("counts", 1);
      }));
  LIQUID_ASSIGN_OR_RETURN(int64_t v1_processed, v1->RunUntilIdle());
  report.records_processed += v1_processed;

  // Reprocess: v2 job starts from offset 0 IN PARALLEL (double footprint);
  // v1 keeps serving until the cut-over.
  processing::JobConfig v2_config;
  v2_config.name = "kappa-v2";
  v2_config.inputs = {feed};
  v2_config.stores = {{"counts", processing::StoreConfig::Kind::kInMemory,
                       /*changelog=*/false}};
  LIQUID_ASSIGN_OR_RETURN(
      processing::Job * v2, liquid_->SubmitJob(v2_config, [] {
        return std::make_unique<WeightedCounterTask>("counts", 2);
      }));
  LIQUID_ASSIGN_OR_RETURN(int64_t v2_processed, v2->RunUntilIdle());
  report.records_processed += v2_processed;
  report.serving_fresh_during_reprocess = true;  // v1 serves throughout.
  // Transient double state: both jobs' stores exist simultaneously.
  report.bytes_materialized += static_cast<uint64_t>(v1_processed) * 8;

  LIQUID_ASSIGN_OR_RETURN(auto served,
                          DumpCounts(v2, feed, "counts"));
  std::map<std::string, int64_t> truth;
  for (int i = 0; i < num_keys_; ++i) {
    const int64_t raw = num_events_ / num_keys_ +
                        (i < num_events_ % num_keys_ ? 1 : 0);
    truth["k" + std::to_string(i)] = ExpectedCountV2(raw);
  }
  report.correct_keys = CountCorrect(served, truth);
  LIQUID_RETURN_NOT_OK(liquid_->StopJob("kappa-v1"));
  LIQUID_RETURN_NOT_OK(liquid_->StopJob("kappa-v2"));
  return report;
}

Result<ArchitectureReport> ArchitectureComparison::RunLiquid() {
  ArchitectureReport report;
  report.architecture = "liquid";
  report.code_paths = 1;
  report.total_keys = num_keys_;

  LIQUID_ASSIGN_OR_RETURN(std::string feed, PublishInput("liquid"));

  // v1 runs and checkpoints through the offset manager.
  processing::JobConfig v1_config;
  v1_config.name = "liquid-counts";
  v1_config.inputs = {feed};
  v1_config.stores = {{"counts", processing::StoreConfig::Kind::kInMemory,
                       /*changelog=*/false}};
  v1_config.checkpoint_annotations = {{"version", "v1"}};
  LIQUID_ASSIGN_OR_RETURN(
      processing::Job * v1, liquid_->SubmitJob(v1_config, [] {
        return std::make_unique<WeightedCounterTask>("counts", 1);
      }));
  LIQUID_ASSIGN_OR_RETURN(int64_t v1_processed, v1->RunUntilIdle());
  report.records_processed += v1_processed;

  // Algorithm change: stop v1, REWIND the same job (same code path, same
  // state slot) to offset 0 via the offset manager, restart with v2.
  LIQUID_RETURN_NOT_OK(liquid_->StopJob("liquid-counts"));
  const messaging::TopicPartition tp{feed, 0};
  messaging::OffsetCommit rewind;
  rewind.offset = 0;
  rewind.annotations = {{"version", "v2"}, {"reason", "algorithm change"}};
  LIQUID_RETURN_NOT_OK(
      liquid_->offsets()->Commit("job.liquid-counts", tp, rewind));

  processing::JobConfig v2_config = v1_config;
  v2_config.checkpoint_annotations = {{"version", "v2"}};
  LIQUID_ASSIGN_OR_RETURN(
      processing::Job * v2, liquid_->SubmitJob(v2_config, [] {
        return std::make_unique<WeightedCounterTask>("counts", 2);
      }));
  LIQUID_ASSIGN_OR_RETURN(int64_t v2_processed, v2->RunUntilIdle());
  report.records_processed += v2_processed;
  // Single job: serving is briefly stale while the rewind replays.
  report.serving_fresh_during_reprocess = false;
  report.bytes_materialized = 0;  // No dumps, no duplicate state.

  LIQUID_ASSIGN_OR_RETURN(auto served, DumpCounts(v2, feed, "counts"));
  std::map<std::string, int64_t> truth;
  for (int i = 0; i < num_keys_; ++i) {
    const int64_t raw = num_events_ / num_keys_ +
                        (i < num_events_ % num_keys_ ? 1 : 0);
    truth["k" + std::to_string(i)] = ExpectedCountV2(raw);
  }
  report.correct_keys = CountCorrect(served, truth);
  LIQUID_RETURN_NOT_OK(liquid_->StopJob("liquid-counts"));
  return report;
}

}  // namespace liquid::core
