#include "core/liquid.h"

#include <set>
#include <sstream>

namespace liquid::core {

namespace {
constexpr char kFeedsRoot[] = "/feeds";
}  // namespace

std::string FeedMetadata::Serialize() const {
  std::ostringstream out;
  out << (kind == FeedKind::kSourceOfTruth ? "source" : "derived") << '\n'
      << producer_job << '\n'
      << code_version << '\n'
      << created_ms << '\n';
  for (const auto& upstream : upstream_feeds) out << upstream << ',';
  return out.str();
}

Result<FeedMetadata> FeedMetadata::Parse(const std::string& data) {
  std::istringstream in(data);
  FeedMetadata metadata;
  std::string kind, created, upstreams;
  if (!std::getline(in, kind) || !std::getline(in, metadata.producer_job) ||
      !std::getline(in, metadata.code_version) || !std::getline(in, created)) {
    return Status::Corruption("bad feed metadata");
  }
  metadata.kind =
      kind == "source" ? FeedKind::kSourceOfTruth : FeedKind::kDerived;
  metadata.created_ms = std::strtoll(created.c_str(), nullptr, 10);
  if (std::getline(in, upstreams)) {
    size_t pos = 0;
    while (pos < upstreams.size()) {
      const size_t comma = upstreams.find(',', pos);
      const size_t end = comma == std::string::npos ? upstreams.size() : comma;
      if (end > pos) metadata.upstream_feeds.push_back(upstreams.substr(pos, end - pos));
      pos = end + 1;
    }
  }
  return metadata;
}

Liquid::Liquid(Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : SystemClock::Default()) {}

Result<std::unique_ptr<Liquid>> Liquid::Start(Options options) {
  std::unique_ptr<Liquid> liquid(new Liquid(std::move(options)));
  LIQUID_RETURN_NOT_OK(liquid->Init());
  return liquid;
}

Status Liquid::Init() {
  cluster_ = std::make_unique<messaging::Cluster>(options_.cluster, clock_);
  LIQUID_RETURN_NOT_OK(cluster_->Start());

  offsets_disk_ = std::make_unique<storage::MemDisk>();
  auto offsets =
      messaging::OffsetManager::Open(offsets_disk_.get(), "offsets/", clock_);
  if (!offsets.ok()) return offsets.status();
  offsets_ = std::move(offsets).value();

  groups_ = std::make_unique<messaging::GroupCoordinator>(
      cluster_.get(), options_.group_session_timeout_ms);
  txn_ = std::make_unique<messaging::TransactionCoordinator>(cluster_.get(),
                                                             offsets_.get());
  admin_ = std::make_unique<messaging::Admin>(cluster_.get(), offsets_.get());
  state_disk_ = std::make_unique<storage::MemDisk>();

  feed_session_ = cluster_->coord()->CreateSession();
  // Idempotent bootstrap: the root may survive from a previous incarnation.
  auto feeds_root = cluster_->coord()->Create(feed_session_, kFeedsRoot, "",
                                              coord::NodeKind::kPersistent);
  if (!feeds_root.ok() && !feeds_root.status().IsAlreadyExists()) {
    return feeds_root.status();
  }
  return Status::OK();
}

Liquid::~Liquid() {
  std::lock_guard<std::mutex> lock(mu_);
  // Destructors cannot propagate the jobs' final-commit Status; callers who
  // need commit guarantees must StopJob() explicitly before teardown.
  for (auto& [name, job] : jobs_) LIQUID_IGNORE_ERROR(job->Stop());
  jobs_.clear();
}

Status Liquid::RegisterFeed(const std::string& name,
                            const FeedMetadata& metadata) {
  std::lock_guard<std::mutex> lock(mu_);
  feeds_[name] = metadata;
  auto created =
      cluster_->coord()->Create(feed_session_, std::string(kFeedsRoot) + "/" + name,
                                metadata.Serialize(), coord::NodeKind::kPersistent);
  if (!created.ok() && !created.status().IsAlreadyExists()) {
    return created.status();
  }
  return Status::OK();
}

Status Liquid::CreateSourceFeed(const std::string& name,
                                const FeedOptions& options) {
  messaging::TopicConfig config;
  config.partitions = options.partitions;
  config.replication_factor = options.replication_factor;
  config.log = options.log;
  config.min_insync_replicas = options.min_insync_replicas;
  config.unclean_leader_election = options.unclean_leader_election;
  LIQUID_RETURN_NOT_OK(cluster_->CreateTopic(name, config));

  FeedMetadata metadata;
  metadata.kind = FeedKind::kSourceOfTruth;
  metadata.created_ms = clock_->NowMs();
  return RegisterFeed(name, metadata);
}

Status Liquid::CreateDerivedFeed(const std::string& name,
                                 const FeedOptions& options,
                                 const std::string& producer_job,
                                 const std::string& code_version,
                                 const std::vector<std::string>& upstream_feeds) {
  messaging::TopicConfig config;
  config.partitions = options.partitions;
  config.replication_factor = options.replication_factor;
  config.log = options.log;
  config.min_insync_replicas = options.min_insync_replicas;
  config.unclean_leader_election = options.unclean_leader_election;
  LIQUID_RETURN_NOT_OK(cluster_->CreateTopic(name, config));

  FeedMetadata metadata;
  metadata.kind = FeedKind::kDerived;
  metadata.producer_job = producer_job;
  metadata.code_version = code_version;
  metadata.upstream_feeds = upstream_feeds;
  metadata.created_ms = clock_->NowMs();
  return RegisterFeed(name, metadata);
}

Result<FeedMetadata> Liquid::GetFeedMetadata(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = feeds_.find(name);
  if (it == feeds_.end()) return Status::NotFound("no such feed: " + name);
  return it->second;
}

Result<std::vector<std::string>> Liquid::GetLineage(
    const std::string& name) const {
  std::vector<std::string> lineage;
  std::set<std::string> seen;
  std::vector<std::string> frontier{name};
  while (!frontier.empty()) {
    const std::string current = frontier.back();
    frontier.pop_back();
    if (!seen.insert(current).second) continue;
    LIQUID_ASSIGN_OR_RETURN(FeedMetadata metadata, GetFeedMetadata(current));
    lineage.push_back(current);
    for (const auto& upstream : metadata.upstream_feeds) {
      frontier.push_back(upstream);
    }
  }
  return lineage;
}

std::unique_ptr<messaging::Producer> Liquid::NewProducer(
    messaging::ProducerConfig config) {
  return std::make_unique<messaging::Producer>(cluster_.get(), config);
}

std::unique_ptr<messaging::Consumer> Liquid::NewConsumer(
    const std::string& group, const std::string& member_id, bool from_earliest) {
  messaging::ConsumerConfig config;
  config.group = group;
  config.start_from_earliest = from_earliest;
  return std::make_unique<messaging::Consumer>(cluster_.get(), offsets_.get(),
                                               groups_.get(), member_id, config);
}

Result<processing::Job*> Liquid::SubmitJob(processing::JobConfig config,
                                           processing::TaskFactory factory) {
  const std::string name = config.name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (jobs_.count(name)) {
      return Status::AlreadyExists("job already running: " + name);
    }
  }
  auto job = processing::Job::Create(cluster_.get(), offsets_.get(),
                                     groups_.get(), state_disk_.get(),
                                     std::move(config), std::move(factory),
                                     "0", txn_.get());
  if (!job.ok()) return job.status();
  processing::Job* handle = job->get();
  std::lock_guard<std::mutex> lock(mu_);
  jobs_[name] = std::move(job).value();
  return handle;
}

Status Liquid::StopJob(const std::string& name) {
  std::unique_ptr<processing::Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = jobs_.find(name);
    if (it == jobs_.end()) return Status::NotFound("no such job: " + name);
    job = std::move(it->second);
    jobs_.erase(it);
  }
  return job->Stop();
}

Status Liquid::RunMaintenance() {
  cluster_->RunLogMaintenance();
  auto stats = offsets_->CompactBackingLog();
  if (!stats.ok()) return stats.status();
  groups_->EvictExpiredMembers();
  return Status::OK();
}

processing::Job* Liquid::GetJob(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(name);
  return it == jobs_.end() ? nullptr : it->second.get();
}

}  // namespace liquid::core
