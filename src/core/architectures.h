#ifndef LIQUID_CORE_ARCHITECTURES_H_
#define LIQUID_CORE_ARCHITECTURES_H_

#include <cstdint>
#include <string>

#include "core/liquid.h"
#include "dfs/dfs.h"
#include "mapreduce/mapreduce.h"

namespace liquid::core {

/// Outcome of running one architectural pattern on the same
/// count-events-per-key workload with a mid-run algorithm change (v1 -> v2).
/// Reproduces the qualitative comparison of §2.2 as measured quantities.
struct ArchitectureReport {
  std::string architecture;
  /// Distinct implementations of the processing logic that must be written
  /// and maintained (Lambda pays 2: batch + stream).
  int code_paths = 0;
  /// Total records processed across all layers, including reprocessing.
  int64_t records_processed = 0;
  /// Extra bytes materialized outside the source-of-truth log (DFS dumps,
  /// duplicate outputs).
  uint64_t bytes_materialized = 0;
  /// Whether serving kept incorporating new data while reprocessing ran.
  bool serving_fresh_during_reprocess = false;
  /// Keys whose final served count matches the v2 ground truth.
  int64_t correct_keys = 0;
  int64_t total_keys = 0;
};

/// Runs the same workload under the Lambda, Kappa and Liquid patterns.
///
/// Workload: `num_events` events over `num_keys` keys are published to a
/// source feed; logic v1 counts events per key; halfway through operations
/// the algorithm changes to v2 (each event now counts double), requiring
/// full reprocessing of history.
class ArchitectureComparison {
 public:
  ArchitectureComparison(Liquid* liquid, int num_events, int num_keys);

  /// Lambda (§2.2): batch layer (MapReduce over a DFS dump) + speed layer
  /// (Liquid job), same logic implemented twice.
  Result<ArchitectureReport> RunLambda(dfs::DistributedFileSystem* fs,
                                       mapreduce::MapReduceEngine* engine);

  /// Kappa (§2.2): stream-only; reprocessing = new job from offset 0 in
  /// parallel, then cut over. Single code path, double transient footprint.
  Result<ArchitectureReport> RunKappa();

  /// Liquid (§3): single stateful nearline job; reprocessing = rewind via the
  /// offset manager, in place.
  Result<ArchitectureReport> RunLiquid();

 private:
  /// Creates the feed (if needed) and publishes the workload. Returns the
  /// feed name used by this run.
  Result<std::string> PublishInput(const std::string& run_tag);

  /// v2 ground truth: every key's count doubled.
  int64_t ExpectedCountV2(int64_t raw_count) const { return raw_count * 2; }

  Liquid* liquid_;
  const int num_events_;
  const int num_keys_;
};

}  // namespace liquid::core

#endif  // LIQUID_CORE_ARCHITECTURES_H_
