#ifndef LIQUID_CORE_LIQUID_H_
#define LIQUID_CORE_LIQUID_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "messaging/admin.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/group_coordinator.h"
#include "messaging/offset_manager.h"
#include "messaging/producer.h"
#include "messaging/transaction.h"
#include "processing/job.h"
#include "storage/disk.h"

namespace liquid::core {

/// Whether a feed is primary data or the output of a processing-layer job
/// (§3: "source-of-truth feeds represent primary data ... derived data feeds
/// contain results from processed source-of-truth feeds or other derived
/// feeds").
enum class FeedKind { kSourceOfTruth, kDerived };

/// Lineage annotations stored with every derived feed (§3: "derived feeds
/// contain lineage information, i.e. annotations about how the data was
/// computed").
struct FeedMetadata {
  FeedKind kind = FeedKind::kSourceOfTruth;
  std::string producer_job;   // Empty for source-of-truth feeds.
  std::string code_version;   // Version of the producing logic.
  std::vector<std::string> upstream_feeds;
  int64_t created_ms = 0;

  std::string Serialize() const;
  static Result<FeedMetadata> Parse(const std::string& data);
};

/// Feed creation options (thin veneer over TopicConfig).
struct FeedOptions {
  int partitions = 1;
  int replication_factor = 1;
  storage::LogConfig log;
  int min_insync_replicas = 1;
  bool unclean_leader_election = false;
};

/// The Liquid data integration stack (Fig. 2): a messaging layer (cluster of
/// brokers + offset manager) and a processing layer (ETL-as-a-service job
/// submission), wired together. This is the top-level object applications
/// use.
class Liquid {
 public:
  struct Options {
    messaging::ClusterConfig cluster;
    /// Injectable clock; null uses the system clock.
    Clock* clock = nullptr;
    /// Consumer-group session timeout (<= 0 disables liveness eviction).
    int64_t group_session_timeout_ms = -1;
  };

  static Result<std::unique_ptr<Liquid>> Start(Options options);

  ~Liquid();

  Liquid(const Liquid&) = delete;
  Liquid& operator=(const Liquid&) = delete;

  // ---- Feeds ----

  /// Creates a source-of-truth feed for primary data.
  Status CreateSourceFeed(const std::string& name, const FeedOptions& options);

  /// Creates a derived feed with lineage annotations.
  Status CreateDerivedFeed(const std::string& name, const FeedOptions& options,
                           const std::string& producer_job,
                           const std::string& code_version,
                           const std::vector<std::string>& upstream_feeds);

  Result<FeedMetadata> GetFeedMetadata(const std::string& name) const;

  /// Full lineage chain of `name`, walking upstream_feeds transitively.
  Result<std::vector<std::string>> GetLineage(const std::string& name) const;

  // ---- Clients ----

  std::unique_ptr<messaging::Producer> NewProducer(
      messaging::ProducerConfig config = {});

  std::unique_ptr<messaging::Consumer> NewConsumer(const std::string& group,
                                                   const std::string& member_id,
                                                   bool from_earliest = true);

  // ---- ETL-as-a-service (§2.1, §3.2) ----

  /// Submits a job executed by the stack; derived feeds it declares as
  /// outputs get lineage recorded. Returns a non-owning handle.
  Result<processing::Job*> SubmitJob(processing::JobConfig config,
                                     processing::TaskFactory factory);

  Status StopJob(const std::string& name);
  processing::Job* GetJob(const std::string& name);

  /// Runs periodic stack maintenance: log retention + compaction on every
  /// broker, offset-manager compaction, and consumer-group liveness eviction.
  Status RunMaintenance();

  // ---- Layer access ----

  messaging::Cluster* cluster() { return cluster_.get(); }
  messaging::OffsetManager* offsets() { return offsets_.get(); }
  messaging::GroupCoordinator* groups() { return groups_.get(); }
  messaging::TransactionCoordinator* transactions() { return txn_.get(); }
  messaging::Admin* admin() { return admin_.get(); }
  storage::Disk* state_disk() { return state_disk_.get(); }
  Clock* clock() { return clock_; }

 private:
  explicit Liquid(Options options);

  Status Init();
  Status RegisterFeed(const std::string& name, const FeedMetadata& metadata);

  Options options_;
  Clock* clock_;
  std::unique_ptr<messaging::Cluster> cluster_;
  std::unique_ptr<storage::MemDisk> offsets_disk_;
  std::unique_ptr<messaging::OffsetManager> offsets_;
  std::unique_ptr<messaging::GroupCoordinator> groups_;
  std::unique_ptr<messaging::TransactionCoordinator> txn_;
  std::unique_ptr<messaging::Admin> admin_;
  std::unique_ptr<storage::MemDisk> state_disk_;

  mutable std::mutex mu_;
  std::map<std::string, FeedMetadata> feeds_;
  std::map<std::string, std::unique_ptr<processing::Job>> jobs_;
  int64_t feed_session_ = 0;
  int consumer_counter_ = 0;
};

}  // namespace liquid::core

#endif  // LIQUID_CORE_LIQUID_H_
