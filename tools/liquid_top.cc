// liquid-top: an in-process observability console for the Liquid stack.
//
// Everything in this repository runs inside one process, so unlike the real
// `top` there is no external cluster to attach to. Instead the tool boots a
// small demo stack (one source feed, one enrichment job publishing a derived
// feed, one healthy consumer group and one deliberately dead one), drives
// traffic through it with tracing enabled, and then renders the observability
// surfaces an operator would use:
//
//   * the per-group / per-partition consumer-lag table (committed offsets vs
//     high watermarks, via messaging::CollectConsumerLag), showing the dead
//     group's lag growing while the healthy group keeps up;
//   * the process-wide metrics registry, as a human summary, as Prometheus
//     text exposition (--prometheus) or as JSON (--json);
//   * one sampled record's end-to-end trace tree (produce -> append ->
//     fetch -> process -> downstream hops).
//
// Usage:
//   liquid-top [--prometheus] [--json] [--records=N] [--sample-rate=R]
//
// See OBSERVABILITY.md for the metric naming scheme and a walkthrough that
// uses this tool to diagnose consumer lag.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/liquid.h"
#include "messaging/lag_monitor.h"

namespace {

using liquid::MetricsRegistry;
using liquid::Span;
using liquid::TraceCollector;

/// Demo enrichment task: uppercases the value, counts per-key messages in a
/// changelogged store, and republishes to the derived feed.
class EnrichTask : public liquid::processing::StreamTask {
 public:
  liquid::Status Process(const liquid::messaging::ConsumerRecord& envelope,
                         liquid::processing::MessageCollector* collector,
                         liquid::processing::TaskCoordinator*) override {
    auto* store = context_->GetStore("counts");
    if (store != nullptr) {
      int64_t count = 0;
      auto existing = store->Get(envelope.record.key);
      if (existing.ok()) count = std::atoll(existing->c_str());
      // liquid-lint: allow(hot-alloc): demo enrichment task: the serialized store value is its output; Put requires owned bytes.
      LIQUID_RETURN_NOT_OK(
          store->Put(envelope.record.key, std::to_string(count + 1)));
    }
    std::string enriched = envelope.record.value;
    for (char& c : enriched) c = static_cast<char>(std::toupper(c));
    return collector->Send(
        "page-views-enriched",
        liquid::storage::Record::KeyValue(envelope.record.key, enriched));
  }

  liquid::Status Init(liquid::processing::TaskContext* context) override {
    context_ = context;
    return liquid::Status::OK();
  }

 private:
  liquid::processing::TaskContext* context_ = nullptr;
};

/// Polls until the consumer sees no new committed data.
void Drain(liquid::messaging::Consumer* consumer) {
  while (true) {
    auto batch = consumer->Poll(64);
    LIQUID_CHECK_OK(batch.status());
    if (batch->empty()) break;
  }
}

int64_t ParseInt(const char* arg, int64_t fallback) {
  char* end = nullptr;
  const long long v = std::strtoll(arg, &end, 10);
  return (end == arg || *end != '\0') ? fallback : v;
}

void PrintTrace(const TraceCollector& collector, uint64_t trace_id) {
  std::printf("TRACE %llu (one sampled record end to end)\n",
              static_cast<unsigned long long>(trace_id));
  for (const Span& span : collector.Trace(trace_id)) {
    std::printf("  %-10s %-28s span=%-4llu parent=%-4llu %lldus\n",
                span.name.c_str(), span.detail.c_str(),
                static_cast<unsigned long long>(span.span_id),
                static_cast<unsigned long long>(span.parent_span_id),
                static_cast<long long>(span.end_us - span.start_us));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool prometheus = false;
  bool json = false;
  int64_t records = 200;
  double sample_rate = 0.1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prometheus") == 0) {
      prometheus = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--records=", 10) == 0) {
      records = ParseInt(argv[i] + 10, records);
    } else if (std::strncmp(argv[i], "--sample-rate=", 14) == 0) {
      sample_rate = std::atof(argv[i] + 14);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--prometheus] [--json] [--records=N] "
                   "[--sample-rate=R]\n",
                   argv[0]);
      return 2;
    }
  }

  TraceCollector::Default()->SetSampleRate(sample_rate);

  liquid::core::Liquid::Options options;
  options.cluster.num_brokers = 3;
  auto stack = liquid::core::Liquid::Start(options);
  if (!stack.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 stack.status().ToString().c_str());
    return 1;
  }
  liquid::core::Liquid* liq = stack->get();

  liquid::core::FeedOptions feed_options;
  feed_options.partitions = 2;
  feed_options.replication_factor = 2;
  LIQUID_CHECK_OK(liq->CreateSourceFeed("page-views", feed_options));
  LIQUID_CHECK_OK(liq->CreateDerivedFeed("page-views-enriched", feed_options,
                                         "enrich", "v1", {"page-views"}));

  liquid::processing::JobConfig job_config;
  job_config.name = "enrich";
  job_config.inputs = {"page-views"};
  job_config.stores = {{"counts"}};
  job_config.commit_interval_ms = 0;  // Checkpoint on every RunOnce.
  auto job = liq->SubmitJob(job_config, [] {
    return std::make_unique<EnrichTask>();
  });
  LIQUID_CHECK_OK(job.status());

  auto producer = liq->NewProducer();
  auto audit = liq->NewConsumer("audit", "audit-0");
  auto laggard = liq->NewConsumer("laggard", "laggard-0");
  LIQUID_CHECK_OK(audit->Subscribe({"page-views"}));
  LIQUID_CHECK_OK(laggard->Subscribe({"page-views"}));

  // Phase 1: both groups keep up.
  const char* const kUsers[] = {"alice", "bob", "carol"};
  for (int64_t i = 0; i < records / 2; ++i) {
    LIQUID_CHECK_OK(producer->Send(
        "page-views", liquid::storage::Record::KeyValue(
                          kUsers[i % 3], "view:/page/" + std::to_string(i))));
  }
  LIQUID_CHECK_OK(producer->Flush());
  LIQUID_CHECK_OK((*job)->RunUntilIdle());
  Drain(audit.get());
  Drain(laggard.get());
  LIQUID_CHECK_OK(audit->Commit());
  LIQUID_CHECK_OK(laggard->Commit());

  // Phase 2: the laggard dies; traffic continues, so its committed offsets
  // freeze and its lag grows.
  LIQUID_CHECK_OK(laggard->Close());
  for (int64_t i = records / 2; i < records; ++i) {
    LIQUID_CHECK_OK(producer->Send(
        "page-views", liquid::storage::Record::KeyValue(
                          kUsers[i % 3], "view:/page/" + std::to_string(i))));
  }
  LIQUID_CHECK_OK(producer->Flush());
  LIQUID_CHECK_OK((*job)->RunUntilIdle());
  Drain(audit.get());
  LIQUID_CHECK_OK(audit->Commit());

  auto lag = liquid::messaging::CollectConsumerLag(liq->cluster(),
                                                   liq->offsets(), liq->clock());

  MetricsRegistry* metrics = MetricsRegistry::Default();
  if (prometheus) {
    std::fputs(metrics->RenderPrometheus().c_str(), stdout);
    return 0;
  }
  if (json) {
    std::fputs(metrics->RenderJson().c_str(), stdout);
    std::fputc('\n', stdout);
    return 0;
  }

  std::printf("liquid-top: %lld records, sample rate %.2f\n\n",
              static_cast<long long>(records),
              TraceCollector::Default()->sample_rate());
  std::fputs(liquid::messaging::FormatLagTable(lag).c_str(), stdout);
  std::printf(
      "\nThe 'laggard' group stopped committing before the second half of\n"
      "the traffic: its lag stays high and its checkpoint age keeps\n"
      "growing, while 'audit' and 'job.enrich' remain caught up.\n\n");

  const auto spans = TraceCollector::Default()->Snapshot();
  uint64_t sample_trace = 0;
  std::map<std::string, int64_t> by_hop;
  for (const Span& span : spans) {
    ++by_hop[span.name];
    if (span.name == "process") sample_trace = span.trace_id;
  }
  std::printf("SPANS (%zu retained, %lld recorded, %lld dropped)\n",
              spans.size(),
              static_cast<long long>(TraceCollector::Default()->recorded()),
              static_cast<long long>(TraceCollector::Default()->dropped()));
  for (const auto& [hop, count] : by_hop) {
    std::printf("  %-10s %lld\n", hop.c_str(), static_cast<long long>(count));
  }
  std::fputc('\n', stdout);
  if (sample_trace != 0) PrintTrace(*TraceCollector::Default(), sample_trace);

  std::printf("\nKey gauges (full set: --prometheus or --json):\n");
  for (const auto& [name, value] : metrics->GaugeValues()) {
    if (name.find(".lag") != std::string::npos ||
        name.find("checkpoint_age") != std::string::npos ||
        name.find("staging_depth") != std::string::npos) {
      std::printf("  %-48s %lld\n", name.c_str(),
                  static_cast<long long>(value));
    }
  }
  return 0;
}
