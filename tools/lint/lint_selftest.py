#!/usr/bin/env python3
"""Self-test for liquid-lint: replays the known-bad/known-good corpus under
tools/lint/testdata/ and asserts each rule fires where it must and stays
silent where it must.

Run one rule (the ctest wiring does this, one test per rule):
  lint_selftest.py --rule snapshot-then-call
or everything:
  lint_selftest.py

For every rule the contract is:
  * the known-bad file produces >= `min_findings` findings with exactly that
    rule id (and the run exits non-zero);
  * the known-good twin produces zero findings of any rule (exit zero).
The `suppression` rule additionally checks that an allow() without a reason,
with an unknown rule id, or with a malformed marker is rejected, and that a
well-formed allow() with a reason fully silences its finding.
"""

import argparse
import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
LINT = os.path.join(HERE, "liquid_lint.py")
TESTDATA = os.path.join(HERE, "testdata")

# rule -> (bad file, min findings of that rule in bad, good file,
#          other rules allowed to co-fire in the bad file)
# A rule may also map to a LIST of such tuples when one corpus pair cannot
# carry every idiom the rule must understand (atomic-order: the plain
# counter pair plus the MPSC-ring claim/publish/fence pair).
CASES = {
    "snapshot-then-call": ("snapshot_then_call_bad.cc", 3,
                           "snapshot_then_call_good.cc", set()),
    # The whole-program lock-graph pass sees the double-replica-lock as a
    # self-cycle on Replica::mu, so it legitimately co-fires here.
    "lock-order": ("lock_order_bad.cc", 2, "lock_order_good.cc",
                   {"lock-graph"}),
    # Cycle with a transitive witness, an upward edge against
    # testdata/lock_hierarchy.txt, and a leaf lock held across an acquisition.
    "lock-graph": ("lock_graph_bad.cc", 3, "lock_graph_good.cc", set()),
    # Direct and transitively-hot allocation sites under a LIQUID_HOT_PATH
    # root: unreserved growth, new-expression, to_string, helper growth.
    "hot-alloc": ("hot_alloc_bad.cc", 3, "hot_alloc_good.cc", set()),
    # Sleep, condvar wait, and a transitively-reached fsync under a hot root.
    "hot-block": ("hot_block_bad.cc", 3, "hot_block_good.cc", set()),
    # Bare seq_cst default plus an unjustified non-relaxed ordering; the
    # ring pair covers the CAS-claim / release-publish / fence idiom of
    # common/mpsc_ring.h (bad CAS defaults, unjustified acquire/release;
    # good `// order:` comments and the free-function fence staying exempt).
    "atomic-order": [
        ("atomic_order_bad.cc", 2, "atomic_order_good.cc", set()),
        ("atomic_order_ring_bad.cc", 3, "atomic_order_ring_good.cc", set()),
    ],
    # A well-formed allow() that silences nothing is itself a finding.
    "stale-allow": ("stale_allow_bad.cc", 1, "stale_allow_good.cc", set()),
    "guarded-by": ("guarded_by_bad.h", 2, "guarded_by_good.h", set()),
    "metric-name": ("metric_name_bad.cc", 2, "metric_name_good.cc", set()),
    "metric-hot-lookup": ("metric_hot_lookup_bad.cc", 3,
                          "metric_hot_lookup_good.cc", set()),
    # An invalid allow() must NOT silence the underlying finding, so the
    # sleep-under-lock sites in the bad file legitimately co-fire.
    "suppression": ("suppression_bad.cc", 3, "suppression_good.cc",
                    {"snapshot-then-call"}),
}


def run_lint(filename, engine):
    proc = subprocess.run(
        [sys.executable, LINT, "--engine", engine, "--root", TESTDATA,
         filename],
        capture_output=True, text=True)
    findings = [line for line in proc.stdout.splitlines()
                if re.search(r":\d+: \[[a-z-]+\]", line)]
    return proc.returncode, findings


def check_rule(rule, engine):
    pairs = CASES[rule]
    if not isinstance(pairs, list):
        pairs = [pairs]
    failures = []
    for pair in pairs:
        failures.extend(check_pair(rule, engine, pair))
    return failures


def check_pair(rule, engine, pair):
    bad, min_findings, good, allowed_others = pair
    failures = []

    rc, findings = run_lint(bad, engine)
    fired = [f for f in findings if f"[{rule}]" in f]
    others = [f for f in findings if f"[{rule}]" not in f
              and not any(f"[{o}]" in f for o in allowed_others)]
    if len(fired) < min_findings:
        failures.append(
            f"{bad}: expected >= {min_findings} [{rule}] findings, got "
            f"{len(fired)}:\n  " + "\n  ".join(findings or ["<none>"]))
    if others:
        failures.append(f"{bad}: unexpected findings of other rules:\n  " +
                        "\n  ".join(others))
    if rc == 0:
        failures.append(f"{bad}: lint exited 0 despite known-bad corpus")

    rc, findings = run_lint(good, engine)
    if findings:
        failures.append(f"{good}: expected silence, got:\n  " +
                        "\n  ".join(findings))
    if rc != 0:
        failures.append(f"{good}: lint exited {rc} on a known-good file")
    return failures


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--rule", choices=sorted(CASES), default=None,
                        help="check one rule (default: all)")
    parser.add_argument("--engine", default="auto",
                        choices=("auto", "clang", "textual"))
    args = parser.parse_args()

    rules = [args.rule] if args.rule else sorted(CASES)
    all_failures = []
    for rule in rules:
        failures = check_rule(rule, args.engine)
        status = "FAIL" if failures else "OK"
        print(f"{status}: {rule}")
        all_failures.extend(failures)
    for failure in all_failures:
        print(f"FAILURE: {failure}", file=sys.stderr)
    return 1 if all_failures else 0


if __name__ == "__main__":
    sys.exit(main())
