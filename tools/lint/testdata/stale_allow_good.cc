// Lint corpus: stale-allow must stay SILENT. Both markers below are live:
// the first suppresses a real hot-alloc finding, and the second uses the
// allow(stale-allow) escape hatch for a suppression that only one engine
// needs (so the other engine must not call it stale).
#include "lint_stubs.h"

namespace liquid {

class JustifiedBuffer {
 public:
  LIQUID_HOT_PATH
  void Process(int value) {
    // liquid-lint: allow(hot-alloc): bounded ring; grows once to capacity then overwrites in place.
    ring_.push_back(value);
    // liquid-lint: allow(stale-allow): the guarded-by marker below is engine-specific; keep it even where that engine does not run.
    // liquid-lint: allow(guarded-by): counter_ is written only by the single poller thread.
    counter_ = counter_ + 1;
  }

 private:
  std::vector<int> ring_;
  long counter_ = 0;
};

}  // namespace liquid
