// Lint corpus: must be fully CLEAN -- a well-formed suppression with a
// written reason silences the finding on the next line.
#include "lint_stubs.h"

namespace liquid {

class GoodSuppressions {
 public:
  void DeliberateSleepUnderLock() {
    MutexLock lock(&mu_);
    // liquid-lint: allow(snapshot-then-call): corpus twin of a deliberate backoff-under-lock.
    SleepMs(1);
  }

 private:
  Mutex mu_;
};

}  // namespace liquid
