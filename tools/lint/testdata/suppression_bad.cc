// Lint corpus: suppression MUST fire three times in this file --
// missing reason, unknown rule id, and a malformed marker.
#include "lint_stubs.h"

namespace liquid {

class BadSuppressions {
 public:
  void NoReason() {
    MutexLock lock(&mu_);
    // liquid-lint: allow(snapshot-then-call)
    SleepMs(1);
  }

  void UnknownRule() {
    MutexLock lock(&mu_);
    // liquid-lint: allow(sleep-is-fine): this rule id does not exist.
    SleepMs(1);
  }

  void Malformed() {
    MutexLock lock(&mu_);
    // liquid-lint snapshot-then-call is suppressed here, promise.
    SleepMs(1);
  }

 private:
  Mutex mu_;
};

}  // namespace liquid
