// Lint corpus: atomic-order MUST fire. Produce() is a hot-path root, so an
// atomic op with the bare seq_cst default is a finding, and an explicit
// non-relaxed ordering without an `// order: <why>` comment is too.
#include "lint_stubs.h"

namespace liquid {

class SequencedCounter {
 public:
  LIQUID_HOT_PATH
  void Produce(long v) {
    count_.fetch_add(1);  // bare seq_cst default: the contract is unstated
    published_.store(v, memory_order_release);  // non-relaxed, unjustified
  }

 private:
  Atomic<long> count_;
  Atomic<long> published_;
};

}  // namespace liquid
