// Lint corpus: metric-hot-lookup MUST fire in every method here.
#include "lint_stubs.h"

namespace liquid {

class BadHotPath {
 public:
  // Name->pointer lookups take the registry lock; hot-path methods must use
  // handles cached at construction instead.
  void Produce() {
    metrics_->GetCounter("produce.records")->Increment();
  }

  long Fetch() {
    metrics_->GetHistogram("liquid.broker.0.fetch_us")->Record(1);
    return 0;
  }

  void ProcessRecord() {
    MetricsRegistry::Default()
        ->GetCounter("liquid.job.wordcount.processed")
        ->Increment();
  }

 private:
  MetricsRegistry* metrics_ = nullptr;
};

}  // namespace liquid
