// Lint corpus: snapshot-then-call MUST fire in every function here.
#include "lint_stubs.h"

namespace liquid {

class BadBroker {
 public:
  // Coordination-service call while holding the lock.
  void PublishState() {
    MutexLock lock(&mu_);
    coord_->Set("/liquid/partition/0", state_);
  }

  // Sleep while holding the lock.
  void Backoff() {
    MutexLock lock(&mu_);
    SleepMs(5);
  }

  // Blocking call in a *Locked helper: the caller holds the lock by contract.
  void RefreshLocked() {
    state_ = coord_->Get("/liquid/partition/0");
  }

 private:
  Mutex mu_;
  Coord* coord_ GUARDED_BY(mu_);
  std::string state_ GUARDED_BY(mu_);
};

}  // namespace liquid
