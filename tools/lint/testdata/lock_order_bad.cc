// Lint corpus: lock-order MUST fire twice (writer-under-replica and
// two replica locks at once).
#include "lint_stubs.h"

namespace liquid {

struct Replica {
  Mutex mu;
  long high_watermark GUARDED_BY(mu) = 0;
};

class BadLockOrder {
 public:
  // Section 5a says map_mu_ -> replica->mu, never the reverse; taking the
  // broker-wide lock in WRITE mode under a replica lock inverts the order.
  void ReassignUnderReplicaLock(Replica* replica) {
    MutexLock lock(&replica->mu);
    WriterMutexLock map_lock(&map_mu_);
  }

  // No scope may hold two replica locks: produce to partition A must never
  // stall partition B.
  void CopyBetweenReplicas(Replica* from, Replica* to) {
    MutexLock from_lock(&from->mu);
    MutexLock to_lock(&to->mu);
    to->high_watermark = from->high_watermark;
  }

 private:
  SharedMutex map_mu_;
};

}  // namespace liquid
