// Lint corpus: lock-order must stay SILENT on this file.
#include "lint_stubs.h"

namespace liquid {

struct Replica {
  Mutex mu;
  long high_watermark GUARDED_BY(mu) = 0;
};

class GoodLockOrder {
 public:
  // The section 5a order: membership lock (shared) first, replica lock under it.
  void Produce(Replica* replica) {
    ReaderMutexLock map_lock(&map_mu_);
    MutexLock lock(&replica->mu);
    replica->high_watermark += 1;
  }

  // Two replicas touched strictly one after the other, never both locked.
  void CopyBetweenReplicas(Replica* from, Replica* to) {
    long snapshot = 0;
    {
      MutexLock from_lock(&from->mu);
      snapshot = from->high_watermark;
    }
    MutexLock to_lock(&to->mu);
    to->high_watermark = snapshot;
  }

 private:
  SharedMutex map_mu_;
};

}  // namespace liquid
