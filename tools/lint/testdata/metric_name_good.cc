// Lint corpus: metric-name must stay SILENT on this file.
#include "lint_stubs.h"

namespace liquid {

class Registry2 {
 public:
  Counter* GetCounter(const std::string& name);
};

// Global names in the documented liquid.<component>.<instance>.* namespace.
void RegisterGlobal() {
  MetricsRegistry::Default()
      ->GetCounter("liquid.broker.0.produce_records")
      ->Increment();
  MetricsRegistry* global = MetricsRegistry::Default();
  std::string prefix = "liquid.consumer.group7.";
  global->GetGauge(prefix + "lag")->Set(0);
}

// Instance-scoped registries are their own namespaces: short names are fine.
void RegisterInstanceScoped(Registry2* metrics) {
  metrics->GetCounter("isr.shrinks")->Increment();
}

}  // namespace liquid
