// Lint corpus: hot-block MUST fire. Poll() is a hot-path root, so a sleep,
// a condition-variable wait, and an fsync-class call — the last one reached
// only transitively through a helper — are all findings.
#include "lint_stubs.h"

namespace liquid {

class BlockingPoller {
 public:
  LIQUID_HOT_PATH
  void Poll() {
    SleepMs(5);       // throttling a hot path by sleeping on it
    ready_.Wait();    // unbounded wait per record
    Persist();
  }

 private:
  // Hot only via the call graph: Poll() -> Persist() -> Sync().
  void Persist() { file_.Sync(); }

  Mutex mu_;
  CondVar ready_{&mu_};
  File file_ GUARDED_BY(mu_);
};

}  // namespace liquid
