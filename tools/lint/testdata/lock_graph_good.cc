// Lint corpus: lock-graph must stay SILENT. Same classes and locks as the
// bad twin, but every acquisition order embeds into
// testdata/lock_hierarchy.txt: edges only point downward in rank, helpers
// acquire strictly inner locks, and `leaf:` locks are acquired last and
// never held across another acquisition.
#include "lint_stubs.h"

namespace liquid {

class GraphSink {
 public:
  // Leaf locks are taken one at a time, innermost, holding nothing else.
  void Flush() {
    {
      MutexLock lock(&sink_mu_);
    }
    MutexLock flush(&flush_mu_);
  }

 private:
  Mutex sink_mu_;
  Mutex flush_mu_;
};

class GraphPipeline {
 public:
  // Downward edge, matching the declared ranks: pipe_mu_ -> stage_mu_.
  void Forward() {
    MutexLock lock(&pipe_mu_);
    MutexLock stage(&stage_mu_);
  }

  // The helper chain acquires only a strictly inner lock, so the transitive
  // edge pipe_mu_ -> stage_mu_ agrees with Forward() instead of inverting it.
  void Backward() {
    MutexLock lock(&pipe_mu_);
    Reenter();
  }

  void Reenter() { Helper(); }

  void Helper() { MutexLock stage(&stage_mu_); }

  // Outermost first: registry_mu_ -> table_mu_ follows the declared ranks.
  void Invert() {
    MutexLock registry(&registry_mu_);
    MutexLock table(&table_mu_);
  }

 private:
  Mutex registry_mu_;
  Mutex table_mu_;
  Mutex pipe_mu_;
  Mutex stage_mu_;
};

}  // namespace liquid
