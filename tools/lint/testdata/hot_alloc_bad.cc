// Lint corpus: hot-alloc MUST fire. Process() is a hot-path root
// (LIQUID_HOT_PATH), so allocation inside it — and inside anything it calls,
// transitively — is a finding: an unreserved container growth, a raw
// new-expression, a std::to_string temporary, and a helper reached only
// through the call graph.
#include "lint_stubs.h"

namespace liquid {

class HotTask {
 public:
  LIQUID_HOT_PATH
  void Process(int value) {
    out_.push_back(value);           // grows without a reserve() in sight
    buffer_ = new char[64];          // raw allocation per record
    key_ = std::to_string(value);    // hidden heap-backed temporary
    Emit(value);
  }

 private:
  // Only reachable from Process(), so the hot property must propagate here
  // through the call graph, not through any annotation on Emit itself.
  void Emit(int value) { staged_.push_back(value); }

  std::vector<int> out_;
  std::vector<int> staged_;
  char* buffer_ = nullptr;
  std::string key_;
};

}  // namespace liquid
