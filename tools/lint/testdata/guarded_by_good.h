// Lint corpus: guarded-by must stay SILENT on this file. Every member
// of the lock-owning class is annotated, const, or exempt by type.
#ifndef LIQUID_TOOLS_LINT_TESTDATA_GUARDED_BY_GOOD_H_
#define LIQUID_TOOLS_LINT_TESTDATA_GUARDED_BY_GOOD_H_

#include <atomic>

#include "lint_stubs.h"

namespace liquid {

/// All-atomic classes count as internally synchronized when used as members.
class SharedFlag {
 public:
  void Set();

 private:
  std::atomic<bool> value_{false};
};

/// The compliant twin of BadGuarded.
class GoodGuarded {
 public:
  void Advance();

 private:
  Mutex mu_;
  long committed_ GUARDED_BY(mu_) = 0;   // guarded state
  std::string leader_ GUARDED_BY(mu_);   // guarded state
  Coord* const coord_ = nullptr;         // immutable after construction
  std::atomic<long> ticks_{0};           // atomic: safe unguarded
  SharedFlag flag_;                      // internally synchronized type
  // liquid-lint: allow(guarded-by): written once in Init() before any thread can observe this object.
  long init_once_ = 0;
};

}  // namespace liquid

#endif  // LIQUID_TOOLS_LINT_TESTDATA_GUARDED_BY_GOOD_H_
