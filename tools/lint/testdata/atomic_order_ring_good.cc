// Lint corpus: atomic-order must stay SILENT on the MPSC-ring idiom done
// right (the discipline common/mpsc_ring.h follows): every non-relaxed
// member op carries an `// order:` comment naming the edge it creates,
// relaxed ops claim no contract and need none, and the Dekker-style
// atomic_thread_fence is a free function the member-op rule does not key on
// (its pairing argument lives at the use site).
#include "lint_stubs.h"

namespace liquid {

class DisciplinedRing {
 public:
  LIQUID_HOT_PATH
  long Claim(long n) {
    // order: acquire pairs with Reset's release reopen of the claim word.
    long cur = reserve_.load(memory_order_acquire);
    for (;;) {
      // order: success/failure acquire pair with Reset's release (a recycled gate value must come with the cleared slots).
      if (reserve_.compare_exchange_weak(cur, cur + n, memory_order_acquire,
                                         memory_order_acquire)) {
        return cur;
      }
    }
  }

  LIQUID_HOT_PATH
  void Publish(long base) {
    // order: release publishes the slot payload with its sequence word (pairs with the drainer's acquire load).
    seq_.store(base, memory_order_release);
    // Dekker handshake with the parked drainer: the fence totally orders
    // this publish against the parked-flag read below.
    atomic_thread_fence(memory_order_seq_cst);
    parked_.load(memory_order_relaxed);
  }

  void Close() {
    // Cold mutator path (not reached from a hot root): gate transitions run
    // under the pipeline mutex, so the relaxed RMW claims no extra edge.
    reserve_.fetch_or(1, memory_order_relaxed);
  }

 private:
  Atomic<long> reserve_;
  Atomic<long> seq_;
  Atomic<bool> parked_;
};

}  // namespace liquid
