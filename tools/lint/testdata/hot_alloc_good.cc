// Lint corpus: hot-alloc must stay SILENT. The hot function reserves before
// growing, allocation happens only in cold setup code, and error-path
// statements (Status construction) are exempt by design.
#include "lint_stubs.h"

namespace liquid {

struct Status {
  static Status InvalidArgument(const std::string& msg);
};

class ColdTask {
 public:
  // Cold: allocation is fine outside the hot closure.
  void Setup(int capacity) {
    buffer_ = new char[64];
    name_ = std::to_string(capacity);
    out_.reserve(capacity);
  }

  LIQUID_HOT_PATH
  void Process(int value) {
    out_.reserve(16);      // growth below is backed by an explicit reserve
    out_.push_back(value);
    Emit(value);
  }

 private:
  void Emit(int value) {
    staged_.reserve(16);
    staged_.push_back(value);
  }

  std::vector<int> out_;
  std::vector<int> staged_;
  char* buffer_ = nullptr;
  std::string name_;
};

}  // namespace liquid
