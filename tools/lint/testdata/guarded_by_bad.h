// Lint corpus: guarded-by MUST fire for `pending_` and `leader_`.
#ifndef LIQUID_TOOLS_LINT_TESTDATA_GUARDED_BY_BAD_H_
#define LIQUID_TOOLS_LINT_TESTDATA_GUARDED_BY_BAD_H_

#include "lint_stubs.h"

namespace liquid {

/// Owns a Mutex but leaves two mutable members unannotated: exactly the
/// shape PR 1 chased by hand and this rule now catches at the gate.
class BadGuarded {
 public:
  void Advance();

 private:
  Mutex mu_;
  long committed_ GUARDED_BY(mu_) = 0;  // annotated: fine
  long pending_ = 0;                    // BAD: mutable, no GUARDED_BY
  std::string leader_;                  // BAD: mutable, no GUARDED_BY
};

}  // namespace liquid

#endif  // LIQUID_TOOLS_LINT_TESTDATA_GUARDED_BY_BAD_H_
