// Lint corpus: hot-block must stay SILENT. Blocking calls live only in cold
// maintenance code; the hot function signals instead of waiting, and the
// one justified wait carries an allow() with its reason.
#include "lint_stubs.h"

namespace liquid {

class PatientPoller {
 public:
  // Cold: retention-style maintenance may sleep and fsync freely.
  void Maintain() {
    SleepMs(100);
    file_.Sync();
  }

  LIQUID_HOT_PATH
  void Poll() {
    // Signaling never blocks; the waiting side is the cold maintenance loop.
    ready_.Signal();
    // liquid-lint: allow(hot-block): bounded turn-ordering wait; the predecessor holds the slot only across an in-memory counter update.
    turn_.Wait();
  }

 private:
  Mutex mu_;
  CondVar ready_{&mu_};
  CondVar turn_{&mu_};
  File file_ GUARDED_BY(mu_);
};

}  // namespace liquid
