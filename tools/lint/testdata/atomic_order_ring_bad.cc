// Lint corpus: atomic-order MUST fire on the MPSC-ring idiom done wrong
// (common/mpsc_ring.h is the real thing). Claim() is a hot-path root; the
// CAS with bare seq_cst defaults, the unjustified release publish, and the
// unjustified acquire consume are each findings.
#include "lint_stubs.h"

namespace liquid {

class SloppyRing {
 public:
  LIQUID_HOT_PATH
  long Claim(long n) {
    long cur = reserve_.load(memory_order_acquire);  // non-relaxed, unjustified
    for (;;) {
      // bare seq_cst defaults on both CAS orders: the pairing is unstated.
      if (reserve_.compare_exchange_weak(cur, cur + n)) return cur;
    }
  }

  LIQUID_HOT_PATH
  void Publish(long base) {
    seq_.store(base, memory_order_release);  // non-relaxed, unjustified
  }

 private:
  Atomic<long> reserve_;
  Atomic<long> seq_;
};

}  // namespace liquid
