// Lint corpus: stale-allow MUST fire. The allow() below is well-formed
// (valid rule id, has a reason) but silences nothing — the function is not
// hot, so no hot-alloc finding exists for it to suppress. Dead suppressions
// rot into false documentation, so they are findings themselves.
#include "lint_stubs.h"

namespace liquid {

class TidyBuffer {
 public:
  void ColdAppend(int value) {
    // liquid-lint: allow(hot-alloc): amortized by the reserve in Setup.
    out_.push_back(value);
  }

 private:
  std::vector<int> out_;
};

}  // namespace liquid
