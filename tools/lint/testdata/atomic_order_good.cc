// Lint corpus: atomic-order must stay SILENT. Relaxed operations need no
// justification (no ordering contract claimed); the one release store
// carries the required `// order:` comment explaining the edge it creates.
#include "lint_stubs.h"

namespace liquid {

class RelaxedCounter {
 public:
  LIQUID_HOT_PATH
  void Produce(long v) {
    count_.fetch_add(1, memory_order_relaxed);
    // order: release pairs with the acquire load in readers (publish barrier).
    published_.store(v, memory_order_release);
  }

  long Snapshot() const {
    // Cold read path: not reached from any hot root, so orders are unchecked.
    return count_.load();
  }

 private:
  Atomic<long> count_;
  Atomic<long> published_;
};

}  // namespace liquid
