// Lint corpus: lock-graph MUST fire. The corpus encodes three distinct
// violations against testdata/lock_hierarchy.txt:
//   1. a lock-order cycle, closed only transitively (stage_mu_ is held while
//      a two-deep helper chain acquires pipe_mu_, inverting Forward());
//   2. an upward edge against the declared ranks (table_mu_ held while
//      acquiring the outermost registry_mu_);
//   3. a `leaf:` lock held while acquiring another lock.
#include "lint_stubs.h"

namespace liquid {

class GraphSink {
 public:
  // sink_mu_ is declared innermost (`leaf:`), so holding it across another
  // acquisition must fire even though no cycle exists yet.
  void Flush() {
    MutexLock lock(&sink_mu_);
    MutexLock flush(&flush_mu_);
  }

 private:
  Mutex sink_mu_;
  Mutex flush_mu_;
};

class GraphPipeline {
 public:
  // Direct edge, consistent with the hierarchy: pipe_mu_ -> stage_mu_.
  void Forward() {
    MutexLock lock(&pipe_mu_);
    MutexLock stage(&stage_mu_);
  }

  // Closes the cycle interprocedurally: stage_mu_ stays held while Reenter()
  // -> Helper() acquires pipe_mu_ two frames down.
  void Backward() {
    MutexLock stage(&stage_mu_);
    Reenter();
  }

  void Reenter() { Helper(); }

  void Helper() { MutexLock lock(&pipe_mu_); }

  // Upward edge: registry_mu_ outranks table_mu_, so acquiring it while
  // table_mu_ is held inverts the declared order without forming a cycle.
  void Invert() {
    MutexLock table(&table_mu_);
    MutexLock registry(&registry_mu_);
  }

 private:
  Mutex registry_mu_;
  Mutex table_mu_;
  Mutex pipe_mu_;
  Mutex stage_mu_;
};

}  // namespace liquid
