// Lint corpus: metric-hot-lookup must stay SILENT on this file.
#include "lint_stubs.h"

namespace liquid {

class GoodHotPath {
 public:
  // Handles are resolved once, at construction; hot paths only touch the
  // cached pointers (registry entries are never erased, so they stay valid).
  GoodHotPath() {
    produce_records_ =
        MetricsRegistry::Default()->GetCounter("liquid.broker.0.produce_records");
    fetch_us_ =
        MetricsRegistry::Default()->GetHistogram("liquid.broker.0.fetch_us");
  }

  void Produce() { produce_records_->Increment(); }

  long Fetch() {
    fetch_us_->Record(1);
    return 0;
  }

 private:
  Counter* produce_records_ = nullptr;
  Histogram* fetch_us_ = nullptr;
};

}  // namespace liquid
