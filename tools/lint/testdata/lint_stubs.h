#ifndef LIQUID_TOOLS_LINT_TESTDATA_LINT_STUBS_H_
#define LIQUID_TOOLS_LINT_TESTDATA_LINT_STUBS_H_

// Minimal self-contained stand-ins for the project types the lint corpus
// exercises, so each testdata snippet parses under both liquid-lint engines
// (the libclang engine compiles these files for real) without dragging in
// the full source tree. Shapes mirror src/common/thread_annotations.h and
// src/common/metrics.h; keep them in sync if those surfaces change.

#include <string>
#include <vector>

#define GUARDED_BY(x)
#define REQUIRES(...)
#define LIQUID_HOT_PATH

namespace liquid {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class SharedMutex {
 public:
  void Lock();
  void Unlock();
  void ReaderLock();
  void ReaderUnlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

class ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu);
  ~ReaderMutexLock();
};

class WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu);
  ~WriterMutexLock();
};

class Counter {
 public:
  void Increment(long delta = 1);
};

class Gauge {
 public:
  void Set(long v);
};

class Histogram {
 public:
  void Record(long v);
};

class MetricsRegistry {
 public:
  static MetricsRegistry* Default();
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
};

class CondVar {
 public:
  explicit CondVar(Mutex* mu);
  void Wait();
  void Signal();
};

/// Stand-in for std::atomic<T>, so the atomic-order corpus stays
/// self-contained (no <atomic> include needed to parse).
enum MemoryOrder {
  memory_order_relaxed,
  memory_order_acquire,
  memory_order_release,
  memory_order_seq_cst,
};

template <typename T>
class Atomic {
 public:
  T load(MemoryOrder order = memory_order_seq_cst) const;
  void store(T v, MemoryOrder order = memory_order_seq_cst);
  T fetch_add(T v, MemoryOrder order = memory_order_seq_cst);
  T fetch_or(T v, MemoryOrder order = memory_order_seq_cst);
  bool compare_exchange_weak(T& expected, T desired,
                             MemoryOrder success = memory_order_seq_cst,
                             MemoryOrder failure = memory_order_seq_cst);
};

/// Stand-in for std::atomic_thread_fence (a free function, not a member op:
/// the atomic-order rule keys on member calls, so fences need no order
/// comment — the fence's pairing argument lives at its use site).
void atomic_thread_fence(MemoryOrder order);

/// Stand-in for the storage File handle (Sync is the fsync-class call).
class File {
 public:
  void Append(const std::string& data);
  void Sync();
};

/// In-process coordination-service handle (ZooKeeper-style).
class Coord {
 public:
  void Set(const std::string& path, const std::string& data);
  std::string Get(const std::string& path);
};

void SleepMs(long ms);

}  // namespace liquid

#endif  // LIQUID_TOOLS_LINT_TESTDATA_LINT_STUBS_H_
