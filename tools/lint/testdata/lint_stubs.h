#ifndef LIQUID_TOOLS_LINT_TESTDATA_LINT_STUBS_H_
#define LIQUID_TOOLS_LINT_TESTDATA_LINT_STUBS_H_

// Minimal self-contained stand-ins for the project types the lint corpus
// exercises, so each testdata snippet parses under both liquid-lint engines
// (the libclang engine compiles these files for real) without dragging in
// the full source tree. Shapes mirror src/common/thread_annotations.h and
// src/common/metrics.h; keep them in sync if those surfaces change.

#include <string>

#define GUARDED_BY(x)
#define REQUIRES(...)

namespace liquid {

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class SharedMutex {
 public:
  void Lock();
  void Unlock();
  void ReaderLock();
  void ReaderUnlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
  ~MutexLock();
};

class ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu);
  ~ReaderMutexLock();
};

class WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu);
  ~WriterMutexLock();
};

class Counter {
 public:
  void Increment(long delta = 1);
};

class Gauge {
 public:
  void Set(long v);
};

class Histogram {
 public:
  void Record(long v);
};

class MetricsRegistry {
 public:
  static MetricsRegistry* Default();
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
};

/// In-process coordination-service handle (ZooKeeper-style).
class Coord {
 public:
  void Set(const std::string& path, const std::string& data);
  std::string Get(const std::string& path);
};

void SleepMs(long ms);

}  // namespace liquid

#endif  // LIQUID_TOOLS_LINT_TESTDATA_LINT_STUBS_H_
