// Lint corpus: snapshot-then-call must stay SILENT on this file.
// The idiomatic shape: snapshot under the lock, release, then call out.
#include "lint_stubs.h"

namespace liquid {

class GoodBroker {
 public:
  void PublishState() {
    std::string snapshot;
    {
      MutexLock lock(&mu_);
      snapshot = state_;
    }  // Lock released: the coordination-service write runs unlocked.
    coord_->Set("/liquid/partition/0", snapshot);
  }

  void Backoff() {
    long wait_ms = 0;
    {
      MutexLock lock(&mu_);
      wait_ms = backoff_ms_;
    }
    SleepMs(wait_ms);
  }

 private:
  Mutex mu_;
  Coord* coord_ GUARDED_BY(mu_);
  std::string state_ GUARDED_BY(mu_);
  long backoff_ms_ GUARDED_BY(mu_) = 1;
};

}  // namespace liquid
