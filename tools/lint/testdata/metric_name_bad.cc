// Lint corpus: metric-name MUST fire in every function here.
#include "lint_stubs.h"

namespace liquid {

// Registered against the process-wide registry but outside the
// liquid.<component>.<instance>.* namespace (OBSERVABILITY.md).
void RegisterBare() {
  MetricsRegistry::Default()->GetCounter("broker.produce_records")->Increment();
}

// Same mistake through a cached registry pointer and a prefix variable.
void RegisterViaPrefix() {
  MetricsRegistry* global = MetricsRegistry::Default();
  std::string prefix = "Broker.0.";
  global->GetGauge(prefix + "lag")->Set(0);
}

}  // namespace liquid
