#!/usr/bin/env python3
"""liquid-lint: project-semantic static analysis for the Liquid tree.

Machine-checks the repo's own concurrency, observability and error-path
invariants -- the rules DESIGN.md and OBSERVABILITY.md state in prose but
Clang TSA and clang-tidy cannot express:

  snapshot-then-call   No coordination-service, broker-to-broker, transport,
                       fsync or sleep call while a liquid::Mutex/SharedMutex
                       is held (DESIGN.md section 5a). Lock scopes come from the
                       RAII lock types (MutexLock, ReaderMutexLock,
                       WriterMutexLock, RecursiveMutexLock), from REQUIRES()
                       annotations on the declaration, and from the *Locked
                       naming convention. The check is transitive one level
                       deep: calling a project function that itself performs
                       an (unsuppressed) blocking call counts.
  lock-order           Section 5a hierarchy: a scope holding a per-replica lock
                       (an expression ending in ->mu / .mu) may not acquire
                       the broker-wide SharedMutex in write mode
                       (WriterMutexLock on map_mu_), and no scope holds two
                       replica locks at once.
  guarded-by           In any class that owns a liquid::Mutex /
                       liquid::SharedMutex / liquid::RecursiveMutex, every
                       mutable data member must carry GUARDED_BY /
                       PT_GUARDED_BY or be exempt (const, atomic, a lock or
                       CondVar itself, or an internally-synchronized type --
                       a project class that owns its own lock or whose data
                       members are all atomic).
  metric-name          Metric names registered against the process-wide
                       MetricsRegistry::Default() must match
                       liquid\\.[a-z_]+\\..* (OBSERVABILITY.md). Per-object
                       registries (broker->metrics(), job->metrics()) are
                       instance-scoped namespaces and stay unconstrained.
  metric-hot-lookup    MetricsRegistry::Get{Counter,Gauge,Histogram} lookups
                       (name -> pointer, takes the registry lock) may not
                       appear inside hot-path methods
                       (Produce*/Fetch*/Append*/Process*/Send*/Poll*/RunOnce):
                       handles must be cached at construction.
  lock-graph           Whole-program lock-order graph. The analyzer builds the
                       project call graph, names every RAII lock acquisition
                       (Broker::map_mu_, Broker::Replica::mu, Log::append_mu_,
                       coord/registry/collector mutexes, ...), and adds an edge
                       "A -> B" whenever A is held while B is acquired --
                       including transitively, through project helpers (holding
                       replica->mu while calling Log::AppendBatch contributes
                       replica->mu -> Log::append_mu_). Cycles are findings
                       (the full witness path is reported, file:line per hop),
                       and every edge between locks named in the checked-in
                       hierarchy (tools/lint/lock_hierarchy.txt, mirrored by
                       the DESIGN.md section 5a table) must point downward.
                       --dot writes the graph as a reviewable Graphviz file.
  hot-alloc            Functions reachable from a LIQUID_HOT_PATH-annotated
                       root (src/common/thread_annotations.h) may not allocate:
                       no `new`, make_shared/make_unique, std::to_string,
                       string concatenation, stringstreams, or push_back /
                       emplace_back on a container the function never
                       reserve()s. Statements that build an error Status or a
                       log line are treated as cold and exempt.
  hot-block            Hot-path code may not block: no fsync/Sync/Flush-to-
                       disk, no sleep, and no CondVar::Wait reachable from a
                       hot root without a reasoned allow().
  atomic-order         Atomic operations in hot-path code must state their
                       memory-order contract: relaxed operations pass, any
                       stronger explicit order needs an `// order: <why>`
                       comment on the same or previous line, and a bare
                       default (seq_cst) operation is always a finding.
  stale-allow          A `// liquid-lint: allow(...)` that silences nothing is
                       itself a finding: stale suppressions hide rot and make
                       every real one less trustworthy.
  suppression          `// liquid-lint: allow(<rule>): <reason>` silences a
                       finding on the same or next line (a block of
                       consecutive allow() comment lines covers the statement
                       that follows the block). The reason is mandatory, the
                       rule id must exist, and the marker must be well-formed;
                       violations of the syntax are findings themselves and
                       cannot be self-suppressed.

Front-ends: the analyzer prefers the libclang Python bindings (a real AST,
driven by compile_commands.json) and falls back to a built-in structural
parser tuned to this repo's idiom when libclang is unavailable -- e.g. on the
GCC-only boxes where the other Clang gate legs self-skip. Either way the same
rule core runs, so the gate never silently goes dark.

Usage:
  tools/lint/liquid_lint.py [--root DIR] [--compdb PATH] [--engine auto|clang|textual]
                            [--dot PATH] [--hierarchy PATH]
                            [paths...]        # default: src tools bench
Exit status: 0 clean, 1 unsuppressed findings, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

RULES = {
    "snapshot-then-call": "blocking call while a liquid lock is held",
    "lock-order": "section 5a lock-hierarchy violation",
    "lock-graph": "global lock-order graph cycle or declared-hierarchy violation",
    "guarded-by": "mutable member of a lock-owning class lacks GUARDED_BY",
    "metric-name": "global metric name must match liquid.<component>.<instance>.*",
    "metric-hot-lookup": "metrics registry lookup on a hot path",
    "hot-alloc": "allocation in LIQUID_HOT_PATH-reachable code",
    "hot-block": "blocking call in LIQUID_HOT_PATH-reachable code",
    "atomic-order": "hot-path atomic without a stated memory-order contract",
    "stale-allow": "allow() suppression that silences no finding",
    "suppression": "malformed liquid-lint suppression",
}

# ---------------------------------------------------------------------------
# Shared vocabulary (kept in one place so both front-ends agree).
# ---------------------------------------------------------------------------

LOCK_TYPES = {
    "MutexLock": "exclusive",
    "RecursiveMutexLock": "exclusive",
    "WriterMutexLock": "writer",
    "ReaderMutexLock": "reader",
}
MUTEX_TYPES = ("Mutex", "SharedMutex", "RecursiveMutex")
ANNOTATION_MACROS = (
    "GUARDED_BY", "PT_GUARDED_BY", "REQUIRES", "REQUIRES_SHARED", "EXCLUDES",
    "ACQUIRE", "ACQUIRE_SHARED", "RELEASE", "RELEASE_SHARED", "TRY_ACQUIRE",
    "CAPABILITY", "SCOPED_CAPABILITY", "ASSERT_CAPABILITY", "RETURN_CAPABILITY",
    "NO_THREAD_SAFETY_ANALYSIS", "LIQUID_NODISCARD", "LIQUID_HOT_PATH",
)

# Marker macro (src/common/thread_annotations.h) naming the hot-path roots
# the hot-alloc / hot-block / atomic-order rules propagate from.
HOT_PATH_MARKER = "LIQUID_HOT_PATH"

# Hot-path methods for metric-hot-lookup: construction-cached handles only.
HOT_PATH_RE = re.compile(r"^(Produce|Fetch|Append|Process|Send|Poll)\w*$|^RunOnce$")

GLOBAL_METRIC_NAME_RE = re.compile(r"^liquid\.[a-z_]+\.")
METRIC_LOOKUPS = ("GetCounter", "GetGauge", "GetHistogram")

# Direct blocking-call categories for snapshot-then-call. Each entry:
# (category, compiled regex over one statement of comment/string-blanked code).
BLOCKING_PATTERNS = [
    ("sleep", re.compile(r"\bsleep_(?:for|until)\s*\(")),
    ("sleep", re.compile(r"\b(?:SleepMs|SleepFor|usleep)\s*\(")),
    # Any call through a coordination-service handle: coord()->X(), coord_->X(),
    # coord_.X(), coord->X().
    ("coordination-service", re.compile(r"\bcoord(?:\(\)|_)?\s*(?:->|\.)\s*\w+\s*\(")),
    # fsync-class: Sync() on anything, Flush() on file/segment/disk handles.
    ("fsync", re.compile(r"(?:->|\.)\s*Sync\s*\(")),
    ("fsync", re.compile(r"\b\w*(?:file|segment|disk)\w*\s*(?:->|\.)\s*Flush\s*\(")),
    # Transport-class: client messaging calls that fan out to brokers.
    ("transport", re.compile(
        r"\bproducer_?\w*\s*(?:->|\.)\s*"
        r"(?:Send|SendBatch|Flush|BeginTransaction|CommitTransaction|"
        r"AbortTransaction)\s*\(")),
    ("transport", re.compile(
        r"\bconsumer_?\w*\s*(?:->|\.)\s*(?:Poll|Commit\w*|Close\w*)\s*\(")),
    ("transport", re.compile(r"\btxn_coordinator_?\w*\s*(?:->|\.)\s*\w+\s*\(")),
    # Direct broker-to-broker chain: ...->broker(id)->Method(...).
    ("broker-to-broker", re.compile(r"->\s*broker\s*\([^()]*\)\s*->\s*\w+\s*\(")),
]

# Types that are internally synchronized but own no liquid lock the index can
# see (atomics only, or synchronization below the project's lock types).
INTERNALLY_SYNC_ALLOWLIST = {
    "Counter", "Gauge", "std::atomic", "std::atomic_bool", "std::atomic_int",
}

SUPPRESS_RE = re.compile(
    r"//\s*liquid-lint:\s*allow\(\s*([A-Za-z0-9_-]+)\s*\)\s*(?::\s*(.*?))?\s*$")
# A comment is treated as an *attempted* suppression marker (and therefore
# must be well-formed) when liquid-lint is followed by ':'/'(' or the comment
# talks about allowing/suppressing. Plain prose mentions of the tool pass.
SUPPRESS_MARKER_RE = re.compile(
    r"//\s*liquid-lint\s*[:(]|//\s*liquid-lint\b.*\b(?:allow|suppress)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Suppression:
    def __init__(self, path, line, rule, reason):
        self.path = path
        self.line = line
        self.rule = rule
        self.reason = reason
        self.used = False


# ---------------------------------------------------------------------------
# Intermediate representation shared by both front-ends.
# ---------------------------------------------------------------------------

class Member:
    """One data member of a class: declaration text, name, line, annotations."""

    def __init__(self, name, type_text, line, guarded, is_const, is_mutable_kw):
        self.name = name
        self.type_text = type_text
        self.line = line
        self.guarded = guarded          # carries GUARDED_BY / PT_GUARDED_BY
        self.is_const = is_const        # immutable after construction
        self.is_mutable_kw = is_mutable_kw


class ClassInfo:
    def __init__(self, name, qual_name, path, line):
        self.name = name
        self.qual_name = qual_name
        self.path = path
        self.line = line
        self.members = []               # [Member]
        self.member_types = {}          # member name -> type text

    def owned_locks(self):
        out = []
        for m in self.members:
            base = strip_wrappers(m.type_text)
            if base.split("::")[-1] in MUTEX_TYPES and "*" not in m.type_text \
                    and "&" not in m.type_text:
                out.append(m.name)
        return out


class LockScope:
    """An active RAII lock: kind, the lock expression, where it was taken."""

    def __init__(self, kind, expr, line, scope_depth):
        self.kind = kind                # exclusive | writer | reader | implied
        self.expr = expr                # e.g. "&replica->mu", "&map_mu_"
        self.line = line
        self.scope_depth = scope_depth

    def is_replica_lock(self):
        # Per-replica locks are the only liquid mutexes reached through a
        # member literally named `mu` (Broker::Replica::mu).
        return bool(re.search(r"(?:->|\.)\s*mu\s*$", self.expr.lstrip("&").strip()))

    def is_map_writer(self):
        return self.kind == "writer" and "map_mu_" in self.expr


class CallSite:
    def __init__(self, line, stmt, locks, receiver=None, callee=None):
        self.line = line
        self.stmt = stmt                # blanked statement text
        self.locks = locks              # [LockScope] active at this site
        self.receiver = receiver
        self.callee = callee


class FunctionInfo:
    def __init__(self, qual_name, path, line):
        self.qual_name = qual_name      # e.g. "Broker::Produce"
        self.path = path
        self.line = line
        self.statements = []            # [(line, stmt_text, [LockScope], depth)]
        self.lock_acquisitions = []     # [(LockScope, [LockScope active before])]
        self.local_types = {}           # var name -> type text
        self.blocking = {}              # category -> (line, detail) set lazily


class FileModel:
    def __init__(self, path, raw_lines):
        self.path = path
        self.raw_lines = raw_lines
        self.classes = []               # [ClassInfo]
        self.functions = []             # [FunctionInfo]
        self.suppressions = []          # [Suppression]
        self.suppression_findings = []  # [Finding]


def strip_wrappers(type_text):
    """std::unique_ptr<Foo> / std::shared_ptr<Foo> / Foo* / const Foo& -> Foo."""
    t = type_text.strip()
    t = re.sub(r"\b(?:mutable|const|static|constexpr|inline|volatile)\b", "", t)
    m = re.match(r"\s*std::(?:unique_ptr|shared_ptr|optional|atomic)\s*<(.*)>\s*[*&]*\s*$", t)
    if m:
        t = m.group(1)
    t = t.replace("*", " ").replace("&", " ").strip()
    return t.split("<")[0].strip()


# ---------------------------------------------------------------------------
# Suppressions (raw-text pass, front-end independent).
# ---------------------------------------------------------------------------

def scan_suppressions(path, raw_lines):
    sups, findings = [], []
    for i, line in enumerate(raw_lines, start=1):
        if not SUPPRESS_MARKER_RE.search(line):
            continue
        m = SUPPRESS_RE.search(line)
        if not m:
            findings.append(Finding(
                path, i, "suppression",
                "malformed marker; use `// liquid-lint: allow(<rule>): <reason>`"))
            continue
        rule, reason = m.group(1), (m.group(2) or "").strip()
        if rule not in RULES:
            findings.append(Finding(
                path, i, "suppression",
                f"unknown rule '{rule}' (known: {', '.join(sorted(RULES))})"))
            continue
        if not reason:
            findings.append(Finding(
                path, i, "suppression",
                f"allow({rule}) without a reason; the reason is mandatory"))
            continue
        sups.append(Suppression(path, i, rule, reason))
    return sups, findings


def suppression_cover_lines(suppressions):
    """Lines each suppression silences: its own line, the next line, and --
    when several allow() comment lines stack -- the first line after the whole
    block, so one statement can carry one allow() per rule it trips."""
    lines_by_path = {}
    for s in suppressions:
        lines_by_path.setdefault(s.path, set()).add(s.line)
    cover = {}  # Suppression -> set of lines
    for s in suppressions:
        lines = {s.line, s.line + 1}
        nxt = s.line + 1
        while nxt in lines_by_path.get(s.path, ()):  # skip the rest of a block
            nxt += 1
            lines.add(nxt)
        cover[s] = lines
    return cover


# ---------------------------------------------------------------------------
# Textual front-end: comment/string blanking, scope tracking, IR extraction.
# Tuned to this repo's idiom (Google style, RAII locks, annotation macros);
# used when libclang is unavailable so the gate never goes dark.
# ---------------------------------------------------------------------------

def blank_comments_and_strings(text):
    """Replace comment/string/char contents with spaces, preserving layout."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = i
            while j < n and text[j] != "\n":
                out[j] = " "
                j += 1
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = i + 2
            while j + 1 < n and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            for k in (i, i + 1, j, j + 1):
                if k < n and text[k] != "\n":
                    out[k] = " "
            i = min(j + 2, n)
        elif c == '"' and i >= 1 and text[i - 1] == "R":
            m = re.match(r'R"([^()\s]{0,16})\(', text[i - 1:])
            if not m:
                i += 1
                continue
            delim = m.group(1)
            close = text.find(f"){delim}\"", i)
            if close == -1:
                close = n
            for k in range(i + len(delim) + 2, close):
                if text[k] != "\n":
                    out[k] = " "
            i = close + len(delim) + 2
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    out[j] = " "
                    j += 1
                    if j < n and text[j] != "\n":
                        out[j] = " "
                    j += 1
                    continue
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            i = j + 1
        else:
            i += 1
    return "".join(out)


def keep_string_literals(text):
    """Like blank_comments_and_strings but KEEPS string contents (for metric
    name extraction) while still blanking comments."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                out[i] = " "
                i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = i
            while j + 1 < n and not (text[j] == "*" and text[j + 1] == "/"):
                if text[j] != "\n":
                    out[j] = " "
                j += 1
            for k in (j, j + 1):
                if k < n and text[k] != "\n":
                    out[k] = " "
            i = min(j + 2, n)
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 2
                    continue
                j += 1
            i = j + 1
        else:
            i += 1
    return "".join(out)


CONTROL_KEYWORDS = ("if", "for", "while", "switch", "catch", "do", "else")

# Anchored to the statement start (modulo namespace qualification) so a
# MutexLock inside a lambda passed as a call argument -- textually part of the
# enclosing statement -- is not mistaken for a function-scope acquisition.
LOCK_DECL_RE = re.compile(
    r"^(?:liquid\s*::\s*)?(" + "|".join(LOCK_TYPES) +
    r")\s+\w+\s*[({]\s*([^;{}]*?)\s*[)}]")

FUNC_NAME_RE = re.compile(
    r"((?:[A-Za-z_]\w*::)*(?:~?[A-Za-z_]\w*|operator[^\s(]{1,3}))\s*\($")


class _Scope:
    def __init__(self, kind, name="", line=0):
        self.kind = kind        # namespace | class | function | block | enum | skip
        self.name = name
        self.line = line
        self.locks = []         # LockScope taken directly in this scope
        self.func = None        # FunctionInfo when kind == function


_SCOPE_FORMER_FIRST = {"namespace", "class", "struct", "enum", "union",
                       "try", "do", "else", "extern"}
_BRACE_INIT_TAIL_RE = re.compile(r"[\w>\]=,]$")
_CTOR_INIT_LIST_RE = re.compile(r"\)\s*:\s*\S")


def _is_brace_init(head):
    """True when a `{` after `head` starts a brace initializer rather than a
    scope: the head ends in a declarator-ish token (`v_`, `>`, `]`, `=`, `,`)
    and is not a scope former. Heads containing `(` are function/control
    signatures unless they look like a constructor member-init list."""
    if not head or not _BRACE_INIT_TAIL_RE.search(head):
        return False
    first = re.split(r"[\s<(:]", head, 1)[0]
    if first in _SCOPE_FORMER_FIRST or first in CONTROL_KEYWORDS:
        return False
    if "(" in head and not _CTOR_INIT_LIST_RE.search(head):
        return False
    return True


class TextualFrontend:
    """Builds FileModels from blanked source using brace/paren tracking."""

    def __init__(self, root):
        self.root = root

    def parse_file(self, path):
        with open(os.path.join(self.root, path), encoding="utf-8",
                  errors="replace") as f:
            text = f.read()
        raw_lines = text.splitlines()
        model = FileModel(path, raw_lines)
        model.suppressions, model.suppression_findings = scan_suppressions(
            path, raw_lines)

        blanked = blank_comments_and_strings(text)
        literal = keep_string_literals(text)
        self._walk(model, blanked, literal)
        return model

    # -- scope walk ---------------------------------------------------------

    def _walk(self, model, blanked, literal):
        stack = [_Scope("top")]
        buf = []                 # chars of the current statement head
        buf_has_content = False  # any non-whitespace seen since last reset
        buf_start_line = 1
        line = 1
        paren = 0
        i, n = 0, len(blanked)
        while i < n:
            c = blanked[i]
            if c == "\n":
                line += 1
                buf.append(" ")
                i += 1
                continue
            if c == "#" and not buf_has_content:
                # Preprocessor directive: consume to end of line, honoring
                # backslash continuations, without touching the statement buf.
                while i < n:
                    if blanked[i] == "\n":
                        line += 1
                        if i >= 1 and blanked[i - 1] == "\\":
                            i += 1
                            continue
                        i += 1
                        break
                    i += 1
                continue
            if c == "(":
                paren += 1
            elif c == ")":
                paren = max(0, paren - 1)
            if c == "{" and paren == 0:
                head = "".join(buf).strip()
                if _is_brace_init(head):
                    # Brace initializer (`std::atomic<bool> v_{false}`,
                    # `int a[3] = {..}`, ctor member-init `: x_{1}`): part of
                    # the current statement, not a new scope. Consume to the
                    # matching brace, keeping line numbers accurate.
                    depth = 0
                    while i < n:
                        ch = blanked[i]
                        if ch == "\n":
                            line += 1
                            buf.append(" ")
                        else:
                            buf.append(ch)
                            if ch == "{":
                                depth += 1
                            elif ch == "}":
                                depth -= 1
                                if depth == 0:
                                    i += 1
                                    break
                        i += 1
                    continue
                stack.append(self._classify(model, stack, head, line,
                                            buf_start_line))
                buf = []
                buf_has_content = False
                buf_start_line = line
                i += 1
                continue
            if c == "}" and paren == 0:
                head = "".join(buf).strip()
                if head:
                    self._statement(model, stack, head, buf_start_line, literal)
                if len(stack) > 1:
                    closing = stack.pop()
                    if closing.kind == "class":
                        self._finish_class(closing)
                buf = []
                buf_has_content = False
                buf_start_line = line
                i += 1
                continue
            if c == ";" and paren == 0:
                head = "".join(buf).strip()
                if head:
                    self._statement(model, stack, head, buf_start_line, literal)
                buf = []
                buf_has_content = False
                buf_start_line = line
                i += 1
                continue
            if not buf_has_content and c not in " \t":
                buf_start_line = line
                buf_has_content = True
            buf.append(c)
            i += 1

    def _enclosing_function(self, stack):
        for scope in reversed(stack):
            if scope.kind == "function":
                return scope.func
        return None

    def _enclosing_class(self, stack):
        for scope in reversed(stack):
            if scope.kind == "class":
                return scope
        return None

    def _active_locks(self, stack):
        locks = []
        for scope in stack:
            locks.extend(scope.locks)
        return locks

    def _classify(self, model, stack, head, line, head_line):
        # Strip attributes, annotation macros, and any access-specifier label
        # glued to the head (labels end with ':', not ';').
        head = re.sub(r"^(?:\s*(?:public|private|protected)\s*:)+", " ", head)
        head = re.sub(r"\[\[[^\]]*\]\]", " ", head)
        for mac in ANNOTATION_MACROS:
            head = re.sub(mac + r"\s*\([^()]*\)", " ", head)
            head = re.sub(r"\b" + mac + r"\b", " ", head)
        head = " ".join(head.split())

        first = head.split(" ")[0] if head else ""
        if first == "namespace":
            name = head[len("namespace"):].strip()
            return _Scope("namespace", name, line)
        if first == "enum" or head.startswith("enum "):
            return _Scope("enum", "", line)
        if re.match(r"^(class|struct)\s+[A-Za-z_]", head) and "(" not in head \
                and "=" not in head:
            m = re.match(r"^(?:class|struct)\s+([A-Za-z_]\w*)", head)
            name = m.group(1)
            enc = self._enclosing_class(stack)
            qual = f"{enc.name}::{name}" if enc else name
            scope = _Scope("class", name, line)
            scope.info = ClassInfo(name, qual, model.path, head_line)
            model.classes.append(scope.info)
            return scope
        if first in CONTROL_KEYWORDS or head in ("try", "do", "else"):
            return _Scope("block", "", line)
        if self._enclosing_function(stack) is not None:
            # Nested braces inside a function body: plain block or lambda --
            # either way statements still belong to the enclosing function.
            return _Scope("block", "", line)
        # Candidate function definition: signature ends with ')' possibly
        # followed by qualifiers.
        sig = re.sub(r"\b(const|noexcept|override|final|mutable|->.*)\b", " ",
                     head).strip()
        m = re.search(r"((?:[A-Za-z_]\w*::)*(?:~?[A-Za-z_]\w*|operator\S{1,3}))"
                      r"\s*\(", head)
        if m and (sig.endswith(")") or head.rstrip().endswith(")")
                  or re.search(r"\)\s*(const|noexcept|override|final)?\s*$", sig)):
            name = m.group(1)
            enc = self._enclosing_class(stack)
            if enc and "::" not in name:
                qual = f"{enc.name}::{name}"
            else:
                qual = name
            scope = _Scope("function", qual, line)
            func = FunctionInfo(qual, model.path, head_line)
            scope.func = func
            model.functions.append(func)
            # Constructor-initializer lists never open lock scopes we track.
            return scope
        if self._enclosing_class(stack) is not None:
            return _Scope("block", "", line)
        return _Scope("block", "", line)

    def _finish_class(self, scope):
        pass

    # -- statements ---------------------------------------------------------

    def _statement(self, model, stack, head, line, literal):
        func = self._enclosing_function(stack)
        cls = self._enclosing_class(stack)
        in_class_body = stack[-1].kind == "class"
        if func is not None:
            self._function_statement(model, stack, func, head, line, literal)
        elif in_class_body and cls is not None:
            self._member_statement(cls.info, head, line)

    def _function_statement(self, model, stack, func, head, line, literal):
        # Record local declarations of the form `Type* var = init` for
        # receiver-type resolution.
        m = re.match(r"^(?:auto|[\w:]+(?:<[^;=]*>)?)\s*[*&]?\s*(\w+)\s*=\s*(.*)$",
                     head)
        if m:
            var, init = m.group(1), m.group(2)
            tm = re.match(r"^([\w:]+(?:<[^;=]*>)?)\s*[*&]?\s*\w+\s*=", head)
            if tm and tm.group(1) != "auto":
                func.local_types[var] = tm.group(1)
            if re.search(r"->\s*broker\s*\(", init) or \
                    re.match(r"^\s*broker\s*\(", init):
                func.local_types[var] = "Broker"
            if re.search(r"\bLeaderFor\s*\(", init):
                # Result<Broker*>: the deref-receiver idiom (*leader)->Fetch().
                func.local_types[var] = "Broker"
            if re.search(r"MetricsRegistry\s*::\s*Default\s*\(\)", init):
                func.local_types[var] = "@global-registry"
            sm = re.match(r'^\s*"', self._raw_init(literal, line, head, init))
            if sm is not None:
                lit = self._leading_literal(literal, line, var)
                if lit is not None:
                    func.local_types.setdefault(f"@literal:{var}", lit)

        # LIQUID_ASSIGN_OR_RETURN(Type* var, init) declares a typed local the
        # receiver-resolution and lock-identity passes need (e.g. `Replica *
        # replica` in every broker request path).
        am = re.match(r"^LIQUID_ASSIGN_OR_RETURN\s*\(\s*([\w:]+(?:<[^,>]*>)?)"
                      r"\s*[*&]?\s*\*?\s*(\w+)\s*,", head)
        if am and am.group(1) != "auto":
            func.local_types[am.group(2)] = am.group(1)

        # RAII lock acquisitions.
        lm = LOCK_DECL_RE.search(head)
        if lm:
            kind = LOCK_TYPES[lm.group(1)]
            expr = lm.group(2).strip()
            active = self._active_locks(stack)
            scope = LockScope(kind, expr, line, len(stack))
            func.lock_acquisitions.append((scope, list(active)))
            stack[-1].locks.append(scope)
            return

        active = self._active_locks(stack)
        func.statements.append((line, head, list(active), len(stack)))

    def _raw_init(self, literal, line, head, init):
        # Best effort: the initializer text with string literals intact.
        raw = literal.splitlines()[line - 1] if line - 1 < len(
            literal.splitlines()) else ""
        eq = raw.find("=")
        return raw[eq + 1:] if eq != -1 else ""

    def _leading_literal(self, literal, line, var):
        lines = literal.splitlines()
        if line - 1 >= len(lines):
            return None
        window = " ".join(lines[line - 1:line + 2])
        m = re.search(re.escape(var) + r"\s*=\s*\"([^\"]*)\"", window)
        return m.group(1) if m else None

    def _member_statement(self, info, head, line):
        # Skip anything that is not a data-member declaration.
        h = " ".join(head.split())
        h = re.sub(r"^(?:(?:public|private|protected)\s*:\s*)+", "", h)
        if not h or h.endswith(":"):
            return
        first = h.split(" ")[0]
        if first in ("public", "private", "protected", "using", "typedef",
                     "friend", "static", "template", "class", "struct", "enum",
                     "explicit", "virtual", "operator", "return"):
            return
        guarded = bool(re.search(r"\b(?:GUARDED_BY|PT_GUARDED_BY)\s*\(", h))
        stripped = h
        for mac in ANNOTATION_MACROS:
            stripped = re.sub(mac + r"\s*\((?:[^()]|\([^()]*\))*\)", " ", stripped)
        stripped = " ".join(stripped.split())
        if re.search(r"=\s*(?:delete|default)\s*$", stripped) or \
                re.search(r"\boperator\b", stripped):
            return
        # Drop default-member initializers.
        stripped = re.split(r"\s*=\s*", stripped)[0].strip()
        stripped = re.sub(r"\{[^}]*\}\s*$", "", stripped).strip()
        if not stripped or "(" in stripped:
            return  # method declaration (or macro call) -- not a data member
        m = re.match(r"^(.*?)([A-Za-z_]\w*)(\s*\[[^\]]*\])?$", stripped)
        if not m:
            return
        type_text, name = m.group(1).strip(), m.group(2)
        if not type_text:
            return
        is_mutable_kw = bool(re.match(r"^mutable\b", type_text))
        # Immutable-after-construction: `const T x`, `T* const x`,
        # `const T* const x`; a leading const with * or & still mutable ptr.
        toks = type_text.split()
        is_const = False
        if toks and toks[-1] == "const":
            is_const = True
        elif toks and toks[0] == "const" and "*" not in type_text \
                and "&" not in type_text:
            is_const = True
        if "constexpr" in toks:
            is_const = True
        info.members.append(Member(name, type_text, line, guarded, is_const,
                                   is_mutable_kw))
        info.member_types[name] = type_text


# ---------------------------------------------------------------------------
# libclang front-end (optional). Builds the same IR via a real AST when the
# clang Python bindings + a loadable libclang are present; any failure makes
# the caller fall back to the textual front-end so the gate keeps running.
# ---------------------------------------------------------------------------

def load_libclang():
    try:
        import clang.cindex as cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
    except Exception:
        for name in ("libclang.so", "libclang-14.so.1", "libclang.so.1"):
            try:
                cindex.Config.set_library_file(name)
                cindex.Index.create()
                break
            except Exception:
                continue
        else:
            return None
    return cindex


class ClangFrontend:
    """AST-accurate front-end; mirrors TextualFrontend's IR contract."""

    def __init__(self, root, compdb_dir):
        self.root = root
        self.cindex = load_libclang()
        if self.cindex is None:
            raise RuntimeError("libclang unavailable")
        self.index = self.cindex.Index.create()
        self.compdb = None
        if compdb_dir and os.path.exists(
                os.path.join(compdb_dir, "compile_commands.json")):
            try:
                self.compdb = self.cindex.CompilationDatabase.fromDirectory(
                    compdb_dir)
            except Exception:
                self.compdb = None

    def _args_for(self, abspath):
        args = ["-std=c++20", "-I" + os.path.join(self.root, "src"),
                "-I" + self.root]
        if self.compdb is not None:
            cmds = self.compdb.getCompileCommands(abspath)
            if cmds:
                got = [a for a in list(cmds[0].arguments)[1:-1]
                       if a not in ("-c", "-o")]
                # Drop the -o/-c operands the slice above may leave behind.
                args = [a for a in got if not a.endswith((".cc", ".o"))] or args
        return args

    def parse_file(self, path):
        abspath = os.path.join(self.root, path)
        with open(abspath, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
        model = FileModel(path, raw_lines)
        model.suppressions, model.suppression_findings = scan_suppressions(
            path, raw_lines)
        tu = self.index.parse(abspath, args=self._args_for(abspath))
        ck = self.cindex.CursorKind
        for cursor in tu.cursor.walk_preorder():
            try:
                if cursor.location.file is None or \
                        os.path.abspath(cursor.location.file.name) != \
                        os.path.abspath(abspath):
                    continue
                if cursor.kind in (ck.CLASS_DECL, ck.STRUCT_DECL) and \
                        cursor.is_definition():
                    self._class(model, cursor)
                elif cursor.kind in (ck.CXX_METHOD, ck.FUNCTION_DECL,
                                     ck.CONSTRUCTOR, ck.DESTRUCTOR) and \
                        cursor.is_definition():
                    self._function(model, cursor)
            except Exception:
                continue
        return model

    def _class(self, model, cursor):
        ck = self.cindex.CursorKind
        qual = cursor.spelling
        parent = cursor.semantic_parent
        if parent is not None and parent.kind in (ck.CLASS_DECL, ck.STRUCT_DECL):
            qual = f"{parent.spelling}::{cursor.spelling}"
        info = ClassInfo(cursor.spelling, qual, model.path,
                         cursor.location.line)
        for child in cursor.get_children():
            if child.kind != ck.FIELD_DECL:
                continue
            tokens = [t.spelling for t in child.get_tokens()]
            text = " ".join(tokens)
            guarded = "GUARDED_BY" in text or "PT_GUARDED_BY" in text or \
                "guarded_by" in text
            type_text = child.type.spelling
            is_const = child.type.is_const_qualified() or \
                (child.type.kind == self.cindex.TypeKind.POINTER and
                 "* const" in type_text)
            info.members.append(Member(
                child.spelling, type_text, child.location.line, guarded,
                is_const, type_text.startswith("mutable")))
            info.member_types[child.spelling] = type_text
        model.classes.append(info)

    def _function(self, model, cursor):
        ck = self.cindex.CursorKind
        qual = cursor.spelling
        parent = cursor.semantic_parent
        if parent is not None and parent.kind in (ck.CLASS_DECL, ck.STRUCT_DECL):
            qual = f"{parent.spelling}::{cursor.spelling}"
        func = FunctionInfo(qual, model.path, cursor.location.line)
        model.functions.append(func)
        # Walk the body tracking compound-statement nesting for lock extents.
        self._body(func, cursor, [], 1)

    def _body(self, func, cursor, locks, depth):
        ck = self.cindex.CursorKind
        for child in cursor.get_children():
            if child.kind == ck.COMPOUND_STMT:
                self._body(func, child, list(locks), depth + 1)
                continue
            if child.kind in (ck.DECL_STMT, ck.VAR_DECL):
                decl = child
                if child.kind == ck.DECL_STMT:
                    kids = list(child.get_children())
                    decl = kids[0] if kids else child
                type_name = decl.type.spelling.split("::")[-1] if \
                    decl.kind == ck.VAR_DECL else ""
                if type_name in LOCK_TYPES:
                    tokens = " ".join(t.spelling for t in decl.get_tokens())
                    m = re.search(r"\(([^;]*)\)", tokens)
                    expr = m.group(1).strip() if m else ""
                    scope = LockScope(LOCK_TYPES[type_name], expr,
                                      decl.location.line, depth)
                    func.lock_acquisitions.append((scope, list(locks)))
                    locks.append(scope)
                    continue
                if decl.kind == ck.VAR_DECL:
                    func.local_types[decl.spelling] = decl.type.spelling
            tokens = " ".join(t.spelling for t in child.get_tokens())
            if tokens:
                func.statements.append(
                    (child.location.line, tokens, list(locks), depth))
            self._body(func, child, list(locks), depth + 1)


# ---------------------------------------------------------------------------
# Project index: cross-file knowledge both rule passes need.
# ---------------------------------------------------------------------------

class ProjectIndex:
    def __init__(self, models, header_models):
        self.classes = {}            # class name -> ClassInfo (last wins)
        self.requires = {}           # "Class::Method" -> requires-expr text
        self.hot_markers = set()     # bare function names tagged LIQUID_HOT_PATH
        for model in list(header_models) + list(models):
            for cls in model.classes:
                self.classes[cls.name] = cls
                self.classes[cls.qual_name] = cls
        for model in header_models:
            self._collect_requires(model)
        for model in list(header_models) + list(models):
            self._collect_hot_markers(model)
        self.internally_sync = self._derive_internally_sync()
        self.blocking_functions = {}  # "Class::Method"/name -> (category, line)
        # member name -> {owning class qual} for mutex-typed members (lock
        # identity) and for all members (receiver-type fallback: a receiver
        # name that is a member of exactly one known class resolves to that
        # member's type, which lets `replica->log->AppendBatch()` chase into
        # storage::Log).
        self.lock_owners = {}
        self.member_types_unique = {}
        seen_members = {}
        seen_classes = set()
        for cls in self.classes.values():
            if id(cls) in seen_classes:
                continue
            seen_classes.add(id(cls))
            for m in cls.members:
                seen_members.setdefault(m.name, []).append((cls, m))
                base = strip_wrappers(m.type_text)
                if base.split("::")[-1] in MUTEX_TYPES and \
                        "*" not in m.type_text and "&" not in m.type_text:
                    self.lock_owners.setdefault(m.name, set()).add(
                        cls.qual_name)
        for name, entries in seen_members.items():
            types = {strip_wrappers(m.type_text) for _cls, m in entries}
            if len(entries) == 1 or len(types) == 1:
                self.member_types_unique[name] = entries[0][1].type_text

    def class_lookup(self, name):
        """ClassInfo for a (possibly namespace-qualified) type name."""
        if not name:
            return None
        if name in self.classes:
            return self.classes[name]
        return self.classes.get(name.split("::")[-1])

    def _collect_requires(self, model):
        # REQUIRES annotations live on declarations in headers; map method
        # name -> annotation so .cc definitions inherit the implied lock.
        for i, raw in enumerate(model.raw_lines, start=1):
            m = re.search(r"\b(\w+)\s*\([^;]*\)\s*(?:const\s*)?REQUIRES\s*\(([^)]*)\)",
                          raw)
            if m:
                self.requires[m.group(1)] = m.group(2).strip()

    def _collect_hot_markers(self, model):
        """LIQUID_HOT_PATH leads a declaration; the root's name is the first
        identifier followed by '(' after the marker (the return type never
        contains one). Collected from comment-blanked raw text, skipping
        preprocessor lines, so both front-ends agree and the macro's own
        #define does not register."""
        blanked = blank_comments_and_strings(
            "\n".join(model.raw_lines)).splitlines()
        for i, line in enumerate(blanked):
            if line.lstrip().startswith("#"):
                continue
            for m in re.finditer(HOT_PATH_MARKER + r"\b", line):
                tail = " ".join([line[m.end():]] + blanked[i + 1:i + 3])
                nm = re.search(r"([A-Za-z_]\w*)\s*\(", tail)
                if nm and nm.group(1) != HOT_PATH_MARKER:
                    self.hot_markers.add(nm.group(1))

    def _derive_internally_sync(self):
        sync = set(INTERNALLY_SYNC_ALLOWLIST)
        changed = True
        while changed:
            changed = False
            for name, cls in self.classes.items():
                if name in sync:
                    continue
                if cls.owned_locks():
                    sync.add(name)
                    sync.add(cls.name)
                    changed = True
                    continue
                if cls.members and all(
                        "atomic" in m.type_text or m.is_const or
                        strip_wrappers(m.type_text) in sync
                        for m in cls.members):
                    # All-atomic/const composition is safe to share.
                    sync.add(name)
                    sync.add(cls.name)
                    changed = True
        return sync


# ---------------------------------------------------------------------------
# Rule passes.
# ---------------------------------------------------------------------------

def resolve_receiver_type(func, index, receiver):
    receiver = receiver.strip()
    if receiver in func.local_types:
        return strip_wrappers(func.local_types[receiver])
    # Member of the enclosing class?
    cls_name = func.qual_name.split("::")[0] if "::" in func.qual_name else None
    if cls_name and cls_name in index.classes:
        t = index.classes[cls_name].member_types.get(receiver)
        if t:
            return strip_wrappers(t)
    return None


def direct_blocking_hits(stmt):
    hits = []
    for category, pattern in BLOCKING_PATTERNS:
        m = pattern.search(stmt)
        if m:
            hits.append((category, m.group(0).strip()))
    return hits


CALL_RE = re.compile(r"(?:\b([A-Za-z_]\w*)\s*(?:->|\.)\s*)?([A-Za-z_]\w*)\s*\(")

# Callee names too generic to chase across the project by name alone.
GENERIC_CALLEES = {
    "Get", "Set", "Create", "Delete", "Start", "Stop", "Run", "Close", "Open",
    "Wait", "Signal", "Lock", "Unlock", "ok", "value", "status", "size",
    "begin", "end", "find", "push_back", "emplace", "emplace_back", "insert",
    "erase", "clear", "empty", "count", "reset", "get", "at", "front", "back",
}


def compute_blocking_functions(models, index, suppressed_at):
    """Fixpoint: function -> {category: (line, detail)} including one-level
    project-call transitivity. Statements whose findings are suppressed do not
    mark their function blocking (the written reason covers the design)."""
    direct = {}
    for model in models:
        for func in model.functions:
            cats = {}
            for line, stmt, _locks, _d in func.statements:
                if (model.path, line) in suppressed_at:
                    continue
                for category, detail in direct_blocking_hits(stmt):
                    cats.setdefault(category, (line, detail))
                # Broker-to-broker via a typed receiver.
                cm = re.search(r"\b(\w+)\s*->\s*(\w+)\s*\(", stmt)
                if cm:
                    rtype = resolve_receiver_type(func, index, cm.group(1))
                    if rtype == "Broker" and cm.group(1) not in ("this",):
                        cats.setdefault("broker-to-broker",
                                        (line, cm.group(0).strip()))
            if cats:
                direct[func.qual_name] = cats
                direct.setdefault(func.qual_name.split("::")[-1], cats)

    # One propagation round: calling a directly-blocking project function.
    result = dict(direct)
    for model in models:
        for func in model.functions:
            if func.qual_name in result:
                continue
            for line, stmt, _locks, _d in func.statements:
                if (model.path, line) in suppressed_at:
                    continue
                for rm, callee in CALL_RE.findall(stmt):
                    if callee in GENERIC_CALLEES or callee in LOCK_TYPES:
                        continue
                    target = None
                    if rm:
                        rtype = resolve_receiver_type(func, index, rm)
                        if rtype and f"{rtype}::{callee}" in direct:
                            target = f"{rtype}::{callee}"
                    elif "::" in func.qual_name:
                        qual = func.qual_name.split("::")[0] + "::" + callee
                        if qual in direct:
                            target = qual
                    if target:
                        cat, (_l, detail) = next(iter(direct[target].items()))
                        result.setdefault(func.qual_name, {})[cat] = (
                            line, f"{callee}() -> {detail}")
                        break
                if func.qual_name in result:
                    break
    return result


def implied_locks(func, index):
    """Locks held on entry: REQUIRES annotations or the *Locked convention."""
    name = func.qual_name.split("::")[-1]
    out = []
    req = index.requires.get(name)
    if req:
        for part in req.split(","):
            part = part.strip()
            kind = "exclusive"
            out.append(LockScope(kind, "&" + part.lstrip("&"), func.line, 0))
    elif name.endswith("Locked"):
        out.append(LockScope("exclusive", "&<caller-held>", func.line, 0))
    return out


def check_snapshot_then_call(models, index, blocking, emit):
    for model in models:
        for func in model.functions:
            entry_locks = implied_locks(func, index)
            for line, stmt, locks, _d in func.statements:
                held = entry_locks + locks
                if not held:
                    continue
                lock_desc = held[-1].expr or "<caller-held>"
                for category, detail in direct_blocking_hits(stmt):
                    emit(Finding(
                        model.path, line, "snapshot-then-call",
                        f"{category} call `{detail}...` while holding "
                        f"`{lock_desc}` (snapshot state, release the lock, "
                        f"then call; DESIGN.md section 5a)"))
                for rm, callee in CALL_RE.findall(stmt):
                    if callee in GENERIC_CALLEES or callee in LOCK_TYPES:
                        continue
                    target = None
                    if rm:
                        rtype = resolve_receiver_type(func, index, rm)
                        if rtype == "Broker" and rm != "this":
                            emit(Finding(
                                model.path, line, "snapshot-then-call",
                                f"broker-to-broker call `{rm}->{callee}(...)` "
                                f"while holding `{lock_desc}`"))
                            continue
                        if rtype and f"{rtype}::{callee}" in blocking:
                            target = f"{rtype}::{callee}"
                    elif "::" in func.qual_name:
                        qual = func.qual_name.split("::")[0] + "::" + callee
                        if qual in blocking:
                            target = qual
                    if target:
                        cat = next(iter(blocking[target]))
                        _l, detail = blocking[target][cat]
                        emit(Finding(
                            model.path, line, "snapshot-then-call",
                            f"call to `{callee}()` ({cat} via {detail}) while "
                            f"holding `{lock_desc}`"))


def check_lock_order(models, index, emit):
    for model in models:
        for func in model.functions:
            entry = implied_locks(func, index)
            entry_replica = any(
                "mu" == re.split(r"->|\.", l.expr.lstrip("&"))[-1].strip()
                for l in entry if "<caller-held>" not in l.expr)
            for scope, active in func.lock_acquisitions:
                held_replica = entry_replica or any(
                    l.is_replica_lock() for l in active)
                if scope.is_map_writer() and held_replica:
                    emit(Finding(
                        model.path, scope.line, "lock-order",
                        "acquiring broker-wide SharedMutex in WRITE mode while "
                        "a replica lock is held (section 5a: map_mu_ -> replica->mu, "
                        "never the reverse)"))
                if scope.is_replica_lock() and held_replica:
                    emit(Finding(
                        model.path, scope.line, "lock-order",
                        "second replica lock acquired while one is already "
                        "held (section 5a: never two replica locks in one scope)"))


def check_guarded_by(models, index, emit):
    seen = set()
    for model in models:
        for cls in model.classes:
            if id(cls) in seen:
                continue
            seen.add(id(cls))
            locks = cls.owned_locks()
            if not locks:
                continue
            for member in cls.members:
                if member.guarded or member.is_const:
                    continue
                base = strip_wrappers(member.type_text)
                short = base.split("::")[-1]
                if short in MUTEX_TYPES or short == "CondVar":
                    continue
                if "atomic" in member.type_text:
                    continue
                if base in index.internally_sync or \
                        short in index.internally_sync:
                    continue
                emit(Finding(
                    model.path, member.line, "guarded-by",
                    f"mutable member `{member.name}` of lock-owning class "
                    f"`{cls.qual_name}` (owns {', '.join(locks)}) has no "
                    f"GUARDED_BY; annotate it, make it const/atomic, or add "
                    f"an allow() with the invariant that protects it"))


METRIC_CALL_RE = re.compile(
    r"(?P<recv>(?:[\w:]+\s*::\s*)?[\w()]+(?:\s*(?:->|\.)\s*[\w()]+)*?)\s*"
    r"(?:->|\.)\s*(?P<fn>GetCounter|GetGauge|GetHistogram)\s*\(")


def metric_name_prefix(func, literal_line):
    """First string-literal fragment of the Get* argument, resolving a
    leading `prefix`-style local through its recorded literal."""
    m = re.search(r"(?:GetCounter|GetGauge|GetHistogram)\s*\(\s*(.+)$",
                  literal_line)
    if not m:
        return None
    arg = m.group(1)
    lm = re.match(r'^\s*"([^"]*)"', arg)
    if lm:
        return lm.group(1)
    vm = re.match(r"^\s*(\w+)\s*\+", arg)
    if vm:
        return func.local_types.get(f"@literal:{vm.group(1)}")
    return None


def check_metrics(models, index, emit):
    for model in models:
        literal_lines = {}
        for func in model.functions:
            hot = bool(HOT_PATH_RE.match(func.qual_name.split("::")[-1]))
            for line, stmt, _locks, _d in func.statements:
                m = METRIC_CALL_RE.search(stmt)
                if not m:
                    continue
                recv = m.group("recv").replace(" ", "")
                fn = m.group("fn")
                if hot:
                    emit(Finding(
                        model.path, line, "metric-hot-lookup",
                        f"{fn}() lookup inside hot-path method "
                        f"`{func.qual_name}`; cache the handle at "
                        f"construction (OBSERVABILITY.md)"))
                is_global = "MetricsRegistry::Default()" in recv.replace(" ", "")
                if not is_global:
                    rtype = func.local_types.get(recv.split("->")[0].split(".")[0])
                    is_global = rtype == "@global-registry"
                if not is_global:
                    continue
                if model.path not in literal_lines:
                    with open(os.path.join(models_root(model), model.path),
                              encoding="utf-8", errors="replace") as f:
                        literal_lines[model.path] = keep_string_literals(
                            f.read()).splitlines()
                lines = literal_lines[model.path]
                window = " ".join(lines[line - 1:min(line + 2, len(lines))])
                prefix = metric_name_prefix(func, window)
                if prefix is None:
                    continue  # dynamic name we cannot resolve: not checkable
                if not GLOBAL_METRIC_NAME_RE.match(prefix + "."):
                    # prefix may already include the dots; check both ways.
                    if not GLOBAL_METRIC_NAME_RE.match(prefix):
                        emit(Finding(
                            model.path, line, "metric-name",
                            f"global metric name '{prefix}...' does not match "
                            f"liquid.<component>.<instance>.* "
                            f"(OBSERVABILITY.md naming scheme)"))


_MODEL_ROOT = {}


def models_root(model):
    return _MODEL_ROOT.get(id(model), ".")


# ---------------------------------------------------------------------------
# Whole-program analyses: call graph, global lock-order graph, hot paths.
# ---------------------------------------------------------------------------

# `(*leader)->Fetch(...)`: the Result<Broker*> deref-receiver idiom CALL_RE
# cannot see. Used only by the call-graph passes so the older per-scope rules
# keep their pinned behavior.
DEREF_CALL_RE = re.compile(
    r"\(\s*\*\s*(\w+)\s*\)\s*(?:->|\.)\s*([A-Za-z_]\w*)\s*\(")


def resolve_receiver_type_ext(func, index, receiver):
    """resolve_receiver_type plus `this` and the unique-member fallback: a
    receiver that is a data member of exactly one known class (`log`,
    `replica`, `tracer_`) resolves to that member's type, which lets the call
    graph chase `replica->log->AppendBatch()` into storage::Log."""
    receiver = receiver.strip()
    if receiver == "this" and "::" in func.qual_name:
        return func.qual_name.rsplit("::", 1)[0]
    rtype = resolve_receiver_type(func, index, receiver)
    if rtype:
        return rtype
    t = index.member_types_unique.get(receiver)
    if t:
        return strip_wrappers(t)
    return None


class CallGraph:
    """qual name -> FunctionInfo and resolved call sites (line, target qual,
    RAII locks active at the site). Shared by the lock-graph and hot-path
    passes so both see the same reachability."""

    def __init__(self, models, index):
        self.index = index
        self.funcs = {}
        for model in models:
            for func in model.functions:
                prev = self.funcs.get(func.qual_name)
                if prev is None or len(func.statements) > len(prev.statements):
                    self.funcs[func.qual_name] = func
        self.calls = {}
        for qual, func in self.funcs.items():
            self.calls[qual] = self._extract_calls(func)

    def _extract_calls(self, func):
        out = []
        seen = set()

        def add(line, target, locks):
            if target and target != func.qual_name:
                key = (line, target, tuple(id(l) for l in locks))
                if key not in seen:
                    seen.add(key)
                    out.append((line, target, locks))

        for line, stmt, locks, _d in func.statements:
            for m in CALL_RE.finditer(stmt):
                rm, callee = m.group(1), m.group(2)
                if callee in LOCK_TYPES or callee == HOT_PATH_MARKER:
                    continue
                if rm:
                    add(line, self._resolve_member(func, rm, callee), locks)
                    continue
                before = stmt[:m.start(2)].rstrip()
                if before.endswith(("->", ".")):
                    # Member call on a receiver CALL_RE cannot name (chained
                    # call result, deref expression): never guess.
                    continue
                if before.endswith("::"):
                    # Qualified call: resolve Class::Fn exactly; std::min and
                    # friends must not collide with same-class accessors.
                    qm = re.search(r"([A-Za-z_]\w*)\s*::\s*$", before)
                    owner = qm.group(1) if qm else None
                    if owner and f"{owner}::{callee}" in self.funcs:
                        add(line, f"{owner}::{callee}", locks)
                    continue
                add(line, self._resolve_plain(func, callee), locks)
            for rm, callee in DEREF_CALL_RE.findall(stmt):
                add(line, self._resolve_member(func, rm, callee), locks)
        return out

    def _resolve_member(self, func, rm, callee):
        rtype = resolve_receiver_type_ext(func, self.index, rm)
        if not rtype:
            return None
        names = [rtype, rtype.split("::")[-1]]
        cls = self.index.class_lookup(rtype)
        if cls:
            names = [cls.qual_name, cls.name] + names
        for n in names:
            q = f"{n}::{callee}"
            if q in self.funcs:
                return q
        return None

    def _resolve_plain(self, func, callee):
        if "::" in func.qual_name:
            q = func.qual_name.rsplit("::", 1)[0] + "::" + callee
            if q in self.funcs:
                return q
        if callee in self.funcs and callee not in GENERIC_CALLEES:
            return callee
        return None


def lock_identity(func, index, expr):
    """Canonical `Class::member` id for a lock expression, or None when the
    guard cannot be named (caller-held markers, locals the index cannot type).
    `&map_mu_` -> Broker::map_mu_, `&replica->mu` -> Broker::Replica::mu."""
    e = re.sub(r"\s+", "", expr or "").lstrip("&")
    if not e or "<caller-held>" in e:
        return None
    e = e.replace("(*", "").replace(")", "").lstrip("*")
    parts = [p for p in re.split(r"->|\.", e) if p]
    if not parts:
        return None
    member = parts[-1]
    if len(parts) == 1:
        # Bare member: the enclosing class owns it, else a unique owner does.
        cls_name = func.qual_name.rsplit("::", 1)[0] \
            if "::" in func.qual_name else None
        cls = index.class_lookup(cls_name) if cls_name else None
        if cls is not None and member in cls.member_types:
            return f"{cls.qual_name}::{member}"
    else:
        rtype = resolve_receiver_type_ext(func, index, parts[0])
        cls = index.class_lookup(rtype) if rtype else None
        if cls is not None and member in cls.member_types:
            return f"{cls.qual_name}::{member}"
    owners = index.lock_owners.get(member)
    if owners and len(owners) == 1:
        return f"{next(iter(owners))}::{member}"
    return None


def build_lock_graph(cg, index, suppress):
    """The global lock-order graph. Edge A -> B: some execution path holds A
    while acquiring B -- directly (nested RAII scopes, REQUIRES entry locks)
    or transitively (holding A while calling a function whose summary says it
    acquires B). Returns {(src, dst): (path, line, witness-lines)}; `suppress`
    is the allow(lock-graph) site predicate -- a suppressed acquisition or
    call site contributes no edges (that is how one cuts a reviewed edge,
    e.g. Histogram::Merge's address-ordered two-instance lock)."""
    edges = {}

    def add_edge(src, dst, path, line, witness):
        edges.setdefault((src, dst), (path, line, witness))

    entry_ids = {}
    summary = {}   # qual -> {lock id: witness-lines}
    for qual, func in cg.funcs.items():
        eids = []
        for l in implied_locks(func, index):
            lid = lock_identity(func, index, l.expr)
            if lid:
                eids.append(lid)
        entry_ids[qual] = eids
        summary[qual] = {}
        for scope, active in func.lock_acquisitions:
            lid = lock_identity(func, index, scope.expr)
            if lid is None or suppress(func.path, scope.line):
                continue
            held = list(eids)
            for a in active:
                aid = lock_identity(func, index, a.expr)
                if aid:
                    held.append(aid)
            for h in held:
                add_edge(h, lid, func.path, scope.line, [
                    f"{func.qual_name} holds {h} and acquires {lid} "
                    f"({func.path}:{scope.line})"])
            summary[qual].setdefault(lid, [
                f"{qual} acquires {lid} ({func.path}:{scope.line})"])

    # Fixpoint: a function's summary also contains everything its callees
    # acquire (entry-held REQUIRES locks are never in a callee's summary --
    # the caller owns those, so no false self-edges).
    for _round in range(len(cg.funcs) + 1):
        changed = False
        for qual, func in cg.funcs.items():
            mine = summary[qual]
            for line, target, _locks in cg.calls.get(qual, ()):
                for lid, wit in summary.get(target, {}).items():
                    if lid not in mine:
                        mine[lid] = [
                            f"{qual} calls {target} "
                            f"({func.path}:{line})"] + wit
                        changed = True
        if not changed:
            break

    # Transitive edges: locks held at a call site -> everything the callee's
    # summary acquires.
    for qual, func in cg.funcs.items():
        for line, target, locks in cg.calls.get(qual, ()):
            if suppress(func.path, line):
                continue
            held = list(entry_ids[qual])
            for l in locks:
                lid = lock_identity(func, index, l.expr)
                if lid:
                    held.append(lid)
            if not held:
                continue
            for lid, wit in summary.get(target, {}).items():
                for h in held:
                    add_edge(h, lid, func.path, line, [
                        f"{qual} holds {h} calling {target} "
                        f"({func.path}:{line})"] + wit)
    return edges


def find_lock_cycles(edges):
    """Unique cycles in the edge set, each as a node list [a, b, ..., a]."""
    adj = {}
    nodes = set()
    for (s, d) in edges:
        adj.setdefault(s, []).append(d)
        nodes.update((s, d))
    color, stack, cycles, seen = {}, [], [], set()

    def dfs(u):
        color[u] = 1
        stack.append(u)
        for v in sorted(adj.get(u, ())):
            if color.get(v, 0) == 0:
                dfs(v)
            elif color.get(v) == 1:
                cyc = stack[stack.index(v):] + [v]
                key = frozenset(cyc)
                if key not in seen:
                    seen.add(key)
                    cycles.append(cyc)
        stack.pop()
        color[u] = 2

    for n in sorted(nodes):
        if color.get(n, 0) == 0:
            dfs(n)
    return cycles


def parse_hierarchy_text(lines):
    """Machine-readable hierarchy: one level per line, outermost first; locks
    sharing a line are unordered peers (an edge between them is a finding);
    `leaf: A B` names innermost locks that may never be held while acquiring
    any other named lock. '#' starts a comment."""
    ranks, leaves = {}, set()
    rank = 0
    for line in lines:
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("leaf:"):
            leaves.update(line[len("leaf:"):].split())
            continue
        for tok in line.split():
            ranks[tok] = rank
        rank += 1
    return ranks, leaves


def design_hierarchy_block(design_path):
    """The ```lock-hierarchy fenced block in DESIGN.md, or None."""
    try:
        with open(design_path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError:
        return None
    m = re.search(r"```lock-hierarchy\n(.*?)```", text, re.S)
    return m.group(1).splitlines() if m else None


def check_lock_graph(edges, root, hierarchy_arg, emit):
    for cyc in find_lock_cycles(edges):
        hops = []
        for a, b in zip(cyc, cyc[1:]):
            path, line, wit = edges[(a, b)]
            hops.append(f"{a} -> {b} [{path}:{line}]")
        path0, line0, wit0 = edges[(cyc[0], cyc[1])]
        witness = "; ".join(
            w for a, b in zip(cyc, cyc[1:]) for w in edges[(a, b)][2])
        emit(Finding(
            path0, line0, "lock-graph",
            f"lock-order cycle: {' ; '.join(hops)} -- witness: {witness}"))

    candidates = [hierarchy_arg] if hierarchy_arg else [
        os.path.join(root, "tools", "lint", "lock_hierarchy.txt"),
        os.path.join(root, "lock_hierarchy.txt")]
    hier_path = next((c for c in candidates if c and os.path.isfile(c)), None)
    if hier_path is None:
        return
    with open(hier_path, encoding="utf-8", errors="replace") as f:
        ranks, leaves = parse_hierarchy_text(f.read().splitlines())
    rel_hier = os.path.relpath(hier_path, root)

    if not hierarchy_arg:
        block = design_hierarchy_block(os.path.join(root, "DESIGN.md"))
        if block is not None and parse_hierarchy_text(block) != (ranks, leaves):
            emit(Finding(
                rel_hier, 1, "lock-graph",
                "checked-in hierarchy disagrees with the ```lock-hierarchy "
                "block in DESIGN.md section 5a; keep them identical"))

    for (s, d), (path, line, wit) in sorted(edges.items()):
        if s == d:
            continue  # self-edges are reported as cycles above
        if s in leaves and (d in ranks or d in leaves):
            emit(Finding(
                path, line, "lock-graph",
                f"leaf lock {s} held while acquiring {d} ({rel_hier} declares "
                f"{s} innermost) -- witness: {'; '.join(wit)}"))
        elif s in ranks and d in ranks:
            if ranks[s] > ranks[d]:
                emit(Finding(
                    path, line, "lock-graph",
                    f"edge {s} -> {d} points upward against the declared "
                    f"hierarchy ({rel_hier}) -- witness: {'; '.join(wit)}"))
            elif ranks[s] == ranks[d]:
                emit(Finding(
                    path, line, "lock-graph",
                    f"edge {s} -> {d} connects unordered peers (same level in "
                    f"{rel_hier}) -- witness: {'; '.join(wit)}"))


def write_dot(dot_path, edges, root, hierarchy_arg):
    """build/lint/lock_graph.dot: the reviewable artifact. Leaf locks from the
    declared hierarchy render dashed so reviewers see the frontier."""
    leaves = set()
    candidates = [hierarchy_arg] if hierarchy_arg else [
        os.path.join(root, "tools", "lint", "lock_hierarchy.txt"),
        os.path.join(root, "lock_hierarchy.txt")]
    hier_path = next((c for c in candidates if c and os.path.isfile(c)), None)
    if hier_path:
        with open(hier_path, encoding="utf-8", errors="replace") as f:
            _ranks, leaves = parse_hierarchy_text(f.read().splitlines())
    d = os.path.dirname(dot_path)
    if d:
        os.makedirs(d, exist_ok=True)
    nodes = sorted({n for e in edges for n in e})
    with open(dot_path, "w", encoding="utf-8") as f:
        f.write("// Generated by tools/lint/liquid_lint.py --dot.\n")
        f.write("// Edge A -> B: some path holds A while acquiring B.\n")
        f.write("digraph liquid_locks {\n")
        f.write("  rankdir=TB;\n  node [shape=box fontname=\"monospace\"];\n")
        for n in nodes:
            style = " style=dashed" if n in leaves else ""
            f.write(f'  "{n}" [label="{n}"{style}];\n')
        for (s, dst), (path, line, _wit) in sorted(edges.items()):
            f.write(f'  "{s}" -> "{dst}" [label="{path}:{line}"];\n')
        f.write("}\n")


def compute_hot_functions(cg):
    """qual -> call chain from a LIQUID_HOT_PATH root (hotness is transitive:
    everything a hot function can call is hot)."""
    hot = {}
    work = []
    for qual in sorted(cg.funcs):
        if qual.split("::")[-1] in cg.index.hot_markers:
            hot[qual] = [qual]
            work.append(qual)
    while work:
        q = work.pop()
        for _line, target, _locks in cg.calls.get(q, ()):
            if target not in hot:
                hot[target] = hot[q] + [target]
                work.append(target)
    return hot


# Allocation shapes hot-alloc rejects. push_back/emplace_back/append are
# handled separately (reserve-aware).
HOT_ALLOC_PATTERNS = [
    ("new-expression", re.compile(r"\bnew\s+[A-Za-z_(]")),
    ("make_shared/make_unique", re.compile(r"\bmake_(?:shared|unique)\s*<")),
    ("std::to_string", re.compile(r"\bto_string\s*\(")),
    ("stringstream", re.compile(r"\bo?stringstream\b")),
    ("std::string temporary", re.compile(r"\bstd\s*::\s*string\s*\(")),
]
GROWTH_CALL_RE = re.compile(
    r"(?:\b(\w+)\s*(?:->|\.)\s*)(push_back|emplace_back|append)\s*\(")
RESERVE_RE = re.compile(r"\b(\w+)\s*(?:->|\.)\s*(?:reserve|resize)\s*\(")
# Error construction and logging are cold by definition: the hot path only
# pays for them when it is already failing.
COLD_STMT_RE = re.compile(
    r"\bStatus\s*::\s*\w+\s*\(|\bLIQUID_LOG\b|\bLIQUID_CHECK\b|\bassert\s*\(")

HOT_BLOCK_PATTERNS = [(c, p) for c, p in BLOCKING_PATTERNS
                      if c in ("sleep", "fsync")] + [
    ("condvar-wait", re.compile(
        r"(?:->|\.)\s*(?:Wait|WaitFor\w*|wait|wait_for|wait_until)\s*\(")),
]

ATOMIC_OP_RE = re.compile(
    r"(?:->|\.)\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\(")
MEMORY_ORDER_RE = re.compile(r"\bmemory_order(?:\s*::\s*|_)(\w+)")
ORDER_COMMENT_RE = re.compile(r"//.*\border:\s*\S")


def _has_order_comment(raw_lines, line):
    for ln in (line, line - 1):
        if 1 <= ln <= len(raw_lines) and ORDER_COMMENT_RE.search(
                raw_lines[ln - 1]):
            return True
    return False


def check_hot_paths(models, cg, hot, emit):
    for model in models:
        for func in model.functions:
            chain = hot.get(func.qual_name)
            if not chain or cg.funcs.get(func.qual_name) is not func:
                continue
            via = " -> ".join(chain) if len(chain) > 1 else chain[0]
            reserved = set()
            for _line, stmt, _locks, _d in func.statements:
                reserved.update(RESERVE_RE.findall(stmt))
            for line, stmt, _locks, _d in func.statements:
                cold = bool(COLD_STMT_RE.search(stmt))
                if not cold:
                    for what, pat in HOT_ALLOC_PATTERNS:
                        if pat.search(stmt):
                            emit(Finding(
                                model.path, line, "hot-alloc",
                                f"{what} on the hot path ({via}); "
                                f"preallocate, reuse, or allow() with the "
                                f"amortization argument"))
                    for recv, call in GROWTH_CALL_RE.findall(stmt):
                        if recv not in reserved:
                            emit(Finding(
                                model.path, line, "hot-alloc",
                                f"`{recv}.{call}()` may reallocate on the hot "
                                f"path ({via}) and `{recv}` is never "
                                f"reserve()d in this function"))
                for what, pat in HOT_BLOCK_PATTERNS:
                    if pat.search(stmt):
                        emit(Finding(
                            model.path, line, "hot-block",
                            f"{what} call on the hot path ({via}); hot paths "
                            f"must stay non-blocking (DESIGN.md section 5a)"))
                am = ATOMIC_OP_RE.search(stmt)
                if am:
                    orders = MEMORY_ORDER_RE.findall(stmt)
                    if not orders:
                        emit(Finding(
                            model.path, line, "atomic-order",
                            f"`{am.group(1)}` with the bare seq_cst default "
                            f"on the hot path ({via}); state the contract "
                            f"explicitly (memory_order_relaxed if no "
                            f"ordering is needed)"))
                    elif any(o != "relaxed" for o in orders) and \
                            not _has_order_comment(model.raw_lines, line):
                        emit(Finding(
                            model.path, line, "atomic-order",
                            f"non-relaxed `{am.group(1)}` on the hot path "
                            f"({via}) without an `// order: <why>` comment "
                            f"justifying the ordering"))


def make_rule_suppressor(cover, rule):
    """Site predicate for pass-internal suppression (edge cutting): covered
    sites are silenced and the allow() is marked used."""
    sites = {}
    for s, lines in cover.items():
        if s.rule == rule:
            for ln in lines:
                sites.setdefault((s.path, ln), []).append(s)

    def suppress(path, line):
        hits = sites.get((path, line))
        if not hits:
            return False
        for s in hits:
            s.used = True
        return True
    return suppress


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def gather_files(root, paths):
    files = []
    for p in paths:
        ap = os.path.join(root, p)
        if os.path.isfile(ap):
            files.append(os.path.relpath(ap, root))
            continue
        for dirpath, dirnames, filenames in os.walk(ap):
            dirnames[:] = [d for d in dirnames
                           if d not in ("corpus", "testdata", ".git")]
            for fn in sorted(filenames):
                if fn.endswith((".cc", ".h")):
                    files.append(os.path.relpath(os.path.join(dirpath, fn),
                                                 root))
    return sorted(set(files))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories relative to --root "
                             "(default: src tools bench)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--compdb", default=None,
                        help="directory containing compile_commands.json "
                             "(used by the libclang engine)")
    parser.add_argument("--engine", choices=("auto", "clang", "textual"),
                        default="auto")
    parser.add_argument("--dot", default=None, metavar="PATH",
                        help="write the global lock-order graph as Graphviz "
                             "(e.g. build/lint/lock_graph.dot)")
    parser.add_argument("--hierarchy", default=None, metavar="PATH",
                        help="declared lock hierarchy file (default: "
                             "tools/lint/lock_hierarchy.txt under --root)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule:20} {desc}")
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    paths = args.paths or ["src", "tools", "bench"]
    files = gather_files(root, paths)
    if not files:
        print("liquid-lint: no input files", file=sys.stderr)
        return 2

    engine_name = "textual"
    frontend = None
    if args.engine in ("auto", "clang"):
        try:
            frontend = ClangFrontend(root, args.compdb)
            engine_name = "clang"
        except Exception as exc:
            if args.engine == "clang":
                print(f"SKIP: liquid-lint clang engine unavailable ({exc}); "
                      f"rerun with --engine=textual", file=sys.stderr)
                return 0
            frontend = None
    if frontend is None:
        frontend = TextualFrontend(root)

    models = []
    for path in files:
        try:
            model = frontend.parse_file(path)
        except Exception as exc:
            if engine_name == "clang":
                # Never let a front-end crash take the gate dark: re-parse
                # this file with the structural fallback.
                model = TextualFrontend(root).parse_file(path)
            else:
                print(f"liquid-lint: internal error parsing {path}: {exc}",
                      file=sys.stderr)
                return 2
        _MODEL_ROOT[id(model)] = root
        models.append(model)

    # Headers always contribute class/REQUIRES knowledge, even when only a
    # subset of paths was requested.
    header_models = [m for m in models if m.path.endswith(".h")]
    index = ProjectIndex(models, header_models)

    suppressions = []
    findings = []
    for model in models:
        suppressions.extend(model.suppressions)
        findings.extend(model.suppression_findings)
    cover = suppression_cover_lines(suppressions)
    suppressed_at = {(s.path, ln) for s, lines in cover.items()
                     for ln in lines}

    blocking = compute_blocking_functions(models, index, suppressed_at)

    raw = []
    emit = raw.append
    check_snapshot_then_call(models, index, blocking, emit)
    check_lock_order(models, index, emit)
    check_guarded_by(models, index, emit)
    check_metrics(models, index, emit)

    # Whole-program passes: both run over the same call graph.
    cg = CallGraph(models, index)
    edges = build_lock_graph(cg, index,
                             make_rule_suppressor(cover, "lock-graph"))
    check_lock_graph(edges, root, args.hierarchy, emit)
    if args.dot:
        write_dot(args.dot, edges, root, args.hierarchy)
    hot = compute_hot_functions(cg)
    check_hot_paths(models, cg, hot, emit)

    # The clang engine records nested statements at several depths; dedupe so
    # one source construct yields one finding.
    uniq, raw_unique = set(), []
    for f in raw:
        key = (f.path, f.line, f.rule, f.message)
        if key not in uniq:
            uniq.add(key)
            raw_unique.append(f)

    # Apply suppressions: a finding is silenced by a matching-rule allow()
    # covering its line (same line, line above, or a stacked allow() block
    # directly above the statement).
    by_site = {}
    for s, lines in cover.items():
        for ln in lines:
            by_site.setdefault((s.path, ln), []).append(s)
    for f in raw_unique:
        matched = False
        for s in by_site.get((f.path, f.line), []):
            if s.rule == f.rule:
                s.used = True
                matched = True
        if not matched:
            findings.append(f)

    # stale-allow: an allow() that silenced nothing is itself a finding.
    # allow(stale-allow) markers are exempt -- they exist to keep a
    # suppression that only one engine needs, and auditing them here would
    # cascade.
    stale = []
    for s in suppressions:
        if not s.used and s.rule != "stale-allow":
            stale.append(Finding(
                s.path, s.line, "stale-allow",
                f"allow({s.rule}) silences no {s.rule} finding; delete the "
                f"suppression (or fix the marker placement)"))
    for f in stale:
        matched = False
        for s in by_site.get((f.path, f.line), []):
            if s.rule == "stale-allow":
                s.used = True
                matched = True
        if not matched:
            findings.append(f)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f)
    n_sup = sum(1 for s in suppressions if s.used)
    print(f"liquid-lint[{engine_name}]: {len(files)} files, "
          f"{len(findings)} finding(s), {n_sup} suppressed", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
