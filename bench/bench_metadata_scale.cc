// Experiment E12 (§5): deployment scale. LinkedIn's deployment hosts 25,000
// topics and 200,000 partitions on ~300 machines; this bench sweeps topic and
// partition counts (scaled down ~50x) and measures topic-creation cost,
// metadata-lookup cost and coordination-service footprint.
//
// Paper shape: per-topic metadata costs stay flat as the topic count grows
// (the coordination namespace and routing scale linearly, lookups stay O(1)).

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/producer.h"

namespace liquid::messaging {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

void Run() {
  Table table({"topics", "partitions_total", "create_us_per_topic",
               "leader_lookup_us", "produce_us_per_record", "znodes"});

  for (int topics : {50, 200, 500}) {
    SystemClock clock;
    ClusterConfig config;
    config.num_brokers = 5;
    Cluster cluster(config, &clock);
    LIQUID_CHECK_OK(cluster.Start());

    TopicConfig topic_config;
    topic_config.partitions = 4;
    topic_config.replication_factor = 2;

    Stopwatch create_timer;
    for (int i = 0; i < topics; ++i) {
      LIQUID_CHECK_OK(cluster.CreateTopic("topic" + std::to_string(i), topic_config));
    }
    const int64_t create_us = create_timer.ElapsedUs() / topics;

    // Leader lookup cost at this scale.
    Stopwatch lookup_timer;
    constexpr int kLookups = 2000;
    for (int i = 0; i < kLookups; ++i) {
      LIQUID_CHECK_OK(cluster.LeaderFor(
          TopicPartition{"topic" + std::to_string(i % topics), i % 4}));
    }
    const double lookup_us =
        static_cast<double>(lookup_timer.ElapsedUs()) / kLookups;

    // Produce cost spread over many topics (routing + append).
    Producer producer(&cluster, ProducerConfig{});
    Stopwatch produce_timer;
    constexpr int kProduces = 2000;
    for (int i = 0; i < kProduces; ++i) {
      LIQUID_CHECK_OK(producer.Send("topic" + std::to_string(i % topics),
                    storage::Record::KeyValue("k" + std::to_string(i), "v")));
    }
    LIQUID_CHECK_OK(producer.Flush());
    const double produce_us =
        static_cast<double>(produce_timer.ElapsedUs()) / kProduces;

    table.AddRow({std::to_string(topics), std::to_string(topics * 4),
                  std::to_string(create_us), Fmt(lookup_us, 2),
                  Fmt(produce_us, 2),
                  std::to_string(cluster.coord()->NodeCount())});
  }
  table.Print(
      "E12: metadata scale — topic sweep (4 partitions x rf 2 each; paper "
      "deployment: 25k topics / 200k partitions)");
}

}  // namespace
}  // namespace liquid::messaging

int main() {
  liquid::messaging::Run();
  return 0;
}
