// Experiment E16: "How fast can we insert?" — a single-broker insert-rate
// sweep in the style of Hesse, Matthies & Uflacker (arXiv:2003.06452), who
// ask the same question of Kafka/Pulsar/RabbitMQ. One axis varies at a time
// from a fixed baseline point (acks=1, sync=none, 100-record batches of
// 100-byte values, 1 partition), so each curve isolates one effect:
//
//   - ack_x_sync:   ack level (0/1/all) x sync_mode (none/every_batch/group)
//                   with 4 concurrent producers. The headline: group commit
//                   coalesces the producers' fsyncs into one per window, so
//                   sync=group recovers most of sync=none's throughput while
//                   every_batch pays one fsync per batch (DESIGN.md §6c).
//   - batch_records: records per produce request. Throughput rises steeply
//                   then flattens once per-request overhead is amortized —
//                   the curve shape Hesse et al. report for Kafka.
//   - value_bytes:  record size. records/s falls as records grow while MB/s
//                   rises toward the sequential-write ceiling.
//   - partitions:   4 producers spread over P partitions of one broker —
//                   the intra-broker parallelism axis (§3.1 topic sharding).
//   - staging_x_producers: LogConfig::staging (off/ring) x producer count on
//                   one contended partition, plus a disjoint t8/p8 pair
//                   (DESIGN.md §5a). On this single-core box wall-clock
//                   cannot show a parallelism win (E15/E16 caveat), so the
//                   headline columns are the contention counters:
//                   append_locks_per_krec collapses from the locked
//                   pipeline's 3 per batch to ~0 under ring staging, and
//                   lock_wait_us (the broker's produce_lock_wait_us sum)
//                   shrinks with it; ring_occupancy and staging_ring_full
//                   show how hard the drainer is being pushed.
//
// The simulated disk charges a fixed fsync cost (DiskLatencyModel::sync_us),
// the term group commit amortizes; `fsyncs` in the output is the measured
// Disk::Sync call count, so the amortization is directly visible.
//
// --json[=path] emits BENCH_insert_sweep.json for CI trend tracking
// (scripts/bench_compare.py). --quick runs a 5-point smoke (baseline,
// acks=all/every_batch, acks=all/group, staging off/ring at 4 producers)
// used by scripts/check.sh and CI.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/metadata.h"
#include "storage/log.h"
#include "storage/record.h"

namespace liquid::messaging {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

const char* AckName(AckMode acks) {
  switch (acks) {
    case AckMode::kNone:
      return "0";
    case AckMode::kLeader:
      return "1";
    case AckMode::kAll:
      return "all";
  }
  return "?";
}

const char* SyncName(storage::SyncMode mode) {
  switch (mode) {
    case storage::SyncMode::kNone:
      return "none";
    case storage::SyncMode::kEveryBatch:
      return "every_batch";
    case storage::SyncMode::kGroup:
      return "group";
  }
  return "?";
}

const char* StagingName(storage::Staging staging) {
  return staging == storage::Staging::kRing ? "ring" : "off";
}

/// One point of the sweep: everything held at the baseline except the axis
/// under study.
struct PointSpec {
  std::string axis;
  AckMode acks = AckMode::kLeader;
  storage::SyncMode sync = storage::SyncMode::kNone;
  storage::Staging staging = storage::Staging::kOff;
  int threads = 1;
  int partitions = 1;
  int batch_records = 100;
  size_t value_bytes = 100;
};

struct SweepPoint {
  PointSpec spec;
  std::string name;
  int64_t records = 0;
  int64_t wall_us = 0;
  int64_t fsyncs = 0;
  double records_per_sec = 0;
  double mb_per_sec = 0;
  /// Contention evidence (the staging axis headline; see file comment).
  int64_t lock_wait_us = 0;
  double append_locks_per_krec = 0;
  double ring_occupancy = 0;
  int64_t staging_ring_full = 0;
};

std::string PointName(const PointSpec& s) {
  if (s.axis == "ack_x_sync") {
    return "ack_x_sync/acks=" + std::string(AckName(s.acks)) +
           "/sync=" + SyncName(s.sync);
  }
  if (s.axis == "batch_records") {
    return "batch_records/b" + std::to_string(s.batch_records);
  }
  if (s.axis == "value_bytes") {
    return "value_bytes/v" + std::to_string(s.value_bytes);
  }
  if (s.axis == "staging_x_producers") {
    return "staging_x_producers/staging=" + std::string(StagingName(s.staging)) +
           "/t" + std::to_string(s.threads) + "/p" +
           std::to_string(s.partitions);
  }
  return "partitions/p" + std::to_string(s.partitions);
}

/// Sums a per-partition log counter ("liquid.log.bench-<p>.<name>") over the
/// point's partitions. Registry counters accumulate across points, so points
/// report deltas against a before-snapshot.
int64_t SumLogCounter(const PointSpec& spec, const std::string& name) {
  int64_t sum = 0;
  for (int p = 0; p < spec.partitions; ++p) {
    sum += MetricsRegistry::Default()
               ->GetCounter("liquid.log.bench-" + std::to_string(p) + "." + name)
               ->value();
  }
  return sum;
}

SweepPoint RunPoint(const PointSpec& spec, int64_t target_records) {
  SystemClock clock;
  ClusterConfig config;
  config.num_brokers = 1;
  // Cheap writes, expensive fsync: the regime where sync_mode matters. The
  // fsync cost is scaled like DiskLatencyModel::ScaledHdd (8 ms / 20) so the
  // every_batch floor is visible without making the sweep take minutes.
  config.disk_latency.write_seek_us = 5;
  config.disk_latency.sync_us = 400;
  auto cluster = std::make_unique<Cluster>(config, &clock);
  LIQUID_CHECK_OK(cluster->Start());
  TopicConfig topic;
  topic.partitions = spec.partitions;
  topic.replication_factor = 1;
  topic.log.sync_mode = spec.sync;
  topic.log.staging = spec.staging;
  LIQUID_CHECK_OK(cluster->CreateTopic("bench", topic));
  Broker* broker = cluster->broker(0);
  storage::MemDisk* disk = cluster->disk(0);

  Histogram* lock_wait =
      MetricsRegistry::Default()->GetHistogram("liquid.broker.0.produce_lock_wait_us");
  const int64_t lock_wait_before = lock_wait->Stats().sum;
  const int64_t locks_before =
      SumLogCounter(spec, "producer_append_mu_acquisitions");
  const int64_t ring_full_before = SumLogCounter(spec, "staging_ring_full_total");
  const int64_t occupancy_before = SumLogCounter(spec, "staging_occupancy_sum");
  const int64_t drained_before = SumLogCounter(spec, "staging_drained_batches");

  const int batches_per_thread = static_cast<int>(std::max<int64_t>(
      1, target_records / (static_cast<int64_t>(spec.threads) *
                           spec.batch_records)));

  // Pre-build per-thread batches so the timed region measures the broker,
  // not record construction.
  std::vector<std::vector<storage::Record>> batches;
  for (int t = 0; t < spec.threads; ++t) {
    Random rng(42 + t);
    std::vector<storage::Record> batch;
    batch.reserve(spec.batch_records);
    for (int i = 0; i < spec.batch_records; ++i) {
      batch.push_back(storage::Record::KeyValue(
          "key" + std::to_string(rng.Uniform(1000)),
          rng.Bytes(spec.value_bytes)));
    }
    batches.push_back(std::move(batch));
  }

  const int64_t fsyncs_before = disk->sync_ops();
  std::atomic<int64_t> acked{0};
  Stopwatch timer;
  std::vector<std::thread> workers;
  workers.reserve(spec.threads);
  for (int t = 0; t < spec.threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < batches_per_thread; ++i) {
        const TopicPartition tp{"bench", (t + i) % spec.partitions};
        for (;;) {
          std::vector<storage::Record> batch = batches[t];  // Fresh offsets.
          auto resp = broker->Produce(tp, std::move(batch), spec.acks);
          if (resp.ok()) break;
          // Ring backpressure is a normal retriable verdict under
          // staging=ring (the client-side throttle convention); anything
          // else is a bench bug.
          if (!resp.status().IsResourceExhausted()) {
            LIQUID_CHECK_OK(resp.status());
          }
          std::this_thread::yield();
        }
        acked.fetch_add(spec.batch_records, std::memory_order_relaxed);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  SweepPoint point;
  point.spec = spec;
  point.name = PointName(spec);
  point.records = acked.load();
  point.wall_us = timer.ElapsedUs();
  point.fsyncs = disk->sync_ops() - fsyncs_before;
  const double wall_us = static_cast<double>(point.wall_us > 0 ? point.wall_us : 1);
  point.records_per_sec = static_cast<double>(point.records) * 1e6 / wall_us;
  point.mb_per_sec = static_cast<double>(point.records) *
                     static_cast<double>(spec.value_bytes) / wall_us;
  point.lock_wait_us = lock_wait->Stats().sum - lock_wait_before;

  // Tear the cluster down first so the ring drainer has consumed every
  // published run before the staging counters are snapshotted.
  cluster.reset();
  const double records = static_cast<double>(std::max<int64_t>(1, point.records));
  point.append_locks_per_krec =
      static_cast<double>(SumLogCounter(spec, "producer_append_mu_acquisitions") -
                          locks_before) *
      1000.0 / records;
  point.staging_ring_full =
      SumLogCounter(spec, "staging_ring_full_total") - ring_full_before;
  const int64_t drained =
      SumLogCounter(spec, "staging_drained_batches") - drained_before;
  point.ring_occupancy =
      drained > 0
          ? static_cast<double>(SumLogCounter(spec, "staging_occupancy_sum") -
                                occupancy_before) /
                static_cast<double>(drained)
          : 0.0;
  return point;
}

std::vector<PointSpec> BuildSweep(bool quick) {
  std::vector<PointSpec> specs;
  if (quick) {
    // The 5-point smoke: baseline, the fsync-per-batch floor, group commit
    // recovering from it, and the staging off/ring pair on one contended
    // partition. CI asserts only that these run and emit.
    PointSpec base;
    base.axis = "ack_x_sync";
    base.threads = 4;
    specs.push_back(base);
    base.acks = AckMode::kAll;
    base.sync = storage::SyncMode::kEveryBatch;
    specs.push_back(base);
    base.sync = storage::SyncMode::kGroup;
    specs.push_back(base);
    PointSpec staged;
    staged.axis = "staging_x_producers";
    staged.threads = 4;
    specs.push_back(staged);
    staged.staging = storage::Staging::kRing;
    specs.push_back(staged);
    return specs;
  }
  for (storage::SyncMode sync :
       {storage::SyncMode::kNone, storage::SyncMode::kEveryBatch,
        storage::SyncMode::kGroup}) {
    for (AckMode acks : {AckMode::kNone, AckMode::kLeader, AckMode::kAll}) {
      PointSpec s;
      s.axis = "ack_x_sync";
      s.acks = acks;
      s.sync = sync;
      s.threads = 4;
      specs.push_back(s);
    }
  }
  for (int b : {1, 10, 50, 100, 500, 1000}) {
    PointSpec s;
    s.axis = "batch_records";
    s.batch_records = b;
    specs.push_back(s);
  }
  for (size_t v : {16, 128, 1024, 4096, 8192}) {
    PointSpec s;
    s.axis = "value_bytes";
    s.value_bytes = v;
    specs.push_back(s);
  }
  for (int p : {1, 2, 4, 8}) {
    PointSpec s;
    s.axis = "partitions";
    s.partitions = p;
    s.threads = 4;
    specs.push_back(s);
  }
  // Staging axis: producer-count scaling on ONE contended partition for both
  // staging modes, plus a disjoint 8-thread/8-partition pair (the regime
  // where per-partition rings shard the contention away entirely).
  for (storage::Staging staging :
       {storage::Staging::kOff, storage::Staging::kRing}) {
    for (int t : {1, 2, 4, 8}) {
      PointSpec s;
      s.axis = "staging_x_producers";
      s.staging = staging;
      s.threads = t;
      specs.push_back(s);
    }
    PointSpec s;
    s.axis = "staging_x_producers";
    s.staging = staging;
    s.threads = 8;
    s.partitions = 8;
    specs.push_back(s);
  }
  return specs;
}

void Run(const char* json_path, bool quick) {
  const std::vector<PointSpec> specs = BuildSweep(quick);
  std::vector<SweepPoint> points;
  Table table({"axis", "acks", "sync", "staging", "threads", "parts", "batch",
               "value_b", "records", "wall_us", "records_per_sec",
               "mb_per_sec", "fsyncs", "lock_wait_us", "locks_per_krec",
               "ring_occ", "ring_full"});
  for (const PointSpec& spec : specs) {
    // Bound the bytes written at large record sizes so the value axis does
    // not dominate the sweep's wall time and memory.
    int64_t target = quick ? 2'000 : 20'000;
    if (spec.value_bytes > 128) {
      target = std::max<int64_t>(
          2'000, static_cast<int64_t>((8u << 20) / spec.value_bytes));
    }
    SweepPoint p = RunPoint(spec, target);
    points.push_back(p);
    table.AddRow({p.spec.axis, AckName(p.spec.acks), SyncName(p.spec.sync),
                  StagingName(p.spec.staging), std::to_string(p.spec.threads),
                  std::to_string(p.spec.partitions),
                  std::to_string(p.spec.batch_records),
                  std::to_string(p.spec.value_bytes),
                  std::to_string(p.records), std::to_string(p.wall_us),
                  Fmt(p.records_per_sec, 0), Fmt(p.mb_per_sec, 1),
                  std::to_string(p.fsyncs), std::to_string(p.lock_wait_us),
                  Fmt(p.append_locks_per_krec, 2), Fmt(p.ring_occupancy, 1),
                  std::to_string(p.staging_ring_full)});
  }
  table.Print(
      "E16 insert sweep: single-broker produce rate, one axis at a time from "
      "the baseline (acks=1, sync=none, 100x100B batches, 1 partition)");

  if (json_path != nullptr) {
    std::ofstream out(json_path, std::ios::trunc);
    out << "{\n  \"benchmark\": \"insert_sweep\",\n"
        << "  \"baseline\": \"acks=1 sync=none batch=100 value=100 p=1\",\n"
        << "  \"sync_us\": 400,\n  \"results\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      out << "    {\"name\": \"" << p.name << "\", \"axis\": \"" << p.spec.axis
          << "\", \"acks\": \"" << AckName(p.spec.acks) << "\", \"sync\": \""
          << SyncName(p.spec.sync) << "\", \"staging\": \""
          << StagingName(p.spec.staging)
          << "\", \"threads\": " << p.spec.threads
          << ", \"partitions\": " << p.spec.partitions
          << ", \"batch_records\": " << p.spec.batch_records
          << ", \"value_bytes\": " << p.spec.value_bytes
          << ", \"records\": " << p.records << ", \"wall_us\": " << p.wall_us
          << ", \"records_per_sec\": " << Fmt(p.records_per_sec, 0)
          << ", \"mb_per_sec\": " << Fmt(p.mb_per_sec, 2)
          << ", \"fsyncs\": " << p.fsyncs
          << ", \"lock_wait_us\": " << p.lock_wait_us
          << ", \"append_locks_per_krec\": " << Fmt(p.append_locks_per_krec, 2)
          << ", \"ring_occupancy\": " << Fmt(p.ring_occupancy, 2)
          << ", \"staging_ring_full\": " << p.staging_ring_full << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out) {
      std::fprintf(stderr, "warning: could not write %s\n", json_path);
    } else {
      std::printf("wrote %s\n", json_path);
    }
  }
}

}  // namespace
}  // namespace liquid::messaging

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_insert_sweep.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json[=path]] [--quick]\n", argv[0]);
      return 2;
    }
  }
  liquid::messaging::Run(json_path, quick);
  return 0;
}
