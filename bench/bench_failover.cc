// Experiment E8 (§4.3): high availability under broker failure. Measures the
// unavailability window (time from leader crash until the partition accepts
// produces again), committed-data preservation, and ISR convergence.
//
// Paper shape: the messaging layer "can tolerate up to N-1 failures with N
// brokers in the set of ISRs"; failover is fast (controller re-election from
// the ISR) and loses no committed data.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/producer.h"

namespace liquid::messaging {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

void RunFailoverTimeline() {
  Table table({"trial", "failover_us", "records_before", "records_after_crash",
               "committed_lost", "new_leader_from_isr"});

  for (int trial = 0; trial < 5; ++trial) {
    SystemClock clock;
    ClusterConfig config;
    config.num_brokers = 5;
    Cluster cluster(config, &clock);
    LIQUID_CHECK_OK(cluster.Start());
    TopicConfig topic;
    topic.partitions = 1;
    topic.replication_factor = 3;
    LIQUID_CHECK_OK(cluster.CreateTopic("t", topic));
    const TopicPartition tp{"t", 0};

    ProducerConfig producer_config;
    producer_config.acks = AckMode::kAll;
    producer_config.batch_max_records = 1;
    Producer producer(&cluster, producer_config);
    for (int i = 0; i < 500; ++i) {
      LIQUID_CHECK_OK(producer.Send("t", storage::Record::KeyValue("k", "v")));
    }
    LIQUID_CHECK_OK(producer.Flush());

    auto before = cluster.GetPartitionState(tp);
    Stopwatch timer;
    LIQUID_CHECK_OK(cluster.StopBroker(before->leader));
    // Time until a produce succeeds against the new leader.
    int64_t failover_us = -1;
    for (int attempt = 0; attempt < 1000; ++attempt) {
      auto leader = cluster.LeaderFor(tp);
      if (leader.ok()) {
        std::vector<storage::Record> one{storage::Record::KeyValue("k", "post")};
        if ((*leader)->Produce(tp, one, AckMode::kAll).ok()) {
          failover_us = timer.ElapsedUs();
          break;
        }
      }
    }
    cluster.ReplicationTick();
    cluster.ReplicationTick();

    auto after = cluster.GetPartitionState(tp);
    const bool from_isr =
        std::find(before->isr.begin(), before->isr.end(), after->leader) !=
        before->isr.end();
    int64_t survived = 0;
    auto leader = cluster.LeaderFor(tp);
    int64_t cursor = 0;
    while (leader.ok()) {
      auto fetch = (*leader)->Fetch(tp, cursor, 1 << 20, -1);
      if (!fetch.ok() || fetch->records.empty()) break;
      survived += static_cast<int64_t>(fetch->records.size());
      cursor = fetch->records.back().offset + 1;
    }
    table.AddRow({std::to_string(trial), std::to_string(failover_us), "500",
                  std::to_string(survived),
                  std::to_string(500 + 1 - survived),  // +1 post-crash record.
                  from_isr ? "yes" : "no"});
  }
  table.Print(
      "E8a: leader-failure timeline (rf=3, acks=all; failover = first "
      "successful produce after crash)");
}

void RunSequentialFailures() {
  // N-1 sequential failures: the last ISR member still serves all data.
  SystemClock clock;
  ClusterConfig config;
  config.num_brokers = 3;
  Cluster cluster(config, &clock);
  LIQUID_CHECK_OK(cluster.Start());
  TopicConfig topic;
  topic.partitions = 1;
  topic.replication_factor = 3;
  LIQUID_CHECK_OK(cluster.CreateTopic("t", topic));
  const TopicPartition tp{"t", 0};

  Table table({"alive_replicas", "produce_ok", "committed_readable"});
  auto produce_and_count = [&]() -> std::pair<bool, int64_t> {
    auto leader = cluster.LeaderFor(tp);
    bool ok = false;
    if (leader.ok()) {
      std::vector<storage::Record> one{storage::Record::KeyValue("k", "v")};
      ok = (*leader)->Produce(tp, one, AckMode::kAll).ok();
    }
    leader = cluster.LeaderFor(tp);
    if (!leader.ok()) return {ok, -1};
    int64_t count = 0, cursor = 0;
    while (true) {
      auto fetch = (*leader)->Fetch(tp, cursor, 1 << 20, -1);
      if (!fetch.ok() || fetch->records.empty()) break;
      count += static_cast<int64_t>(fetch->records.size());
      cursor = fetch->records.back().offset + 1;
    }
    return {ok, count};
  };

  auto replicas = cluster.GetPartitionState(tp)->replicas;
  auto [ok3, count3] = produce_and_count();
  table.AddRow({"3", ok3 ? "yes" : "no", std::to_string(count3)});
  LIQUID_CHECK_OK(cluster.StopBroker(replicas[0]));
  auto [ok2, count2] = produce_and_count();
  table.AddRow({"2", ok2 ? "yes" : "no", std::to_string(count2)});
  LIQUID_CHECK_OK(cluster.StopBroker(replicas[1]));
  auto [ok1, count1] = produce_and_count();
  table.AddRow({"1", ok1 ? "yes" : "no", std::to_string(count1)});
  table.Print(
      "E8b: N-1 sequential broker failures (rf=3): availability and committed "
      "data");
}

}  // namespace
}  // namespace liquid::messaging

int main() {
  liquid::messaging::RunFailoverTimeline();
  liquid::messaging::RunSequentialFailures();
  return 0;
}
