// Chaos soak harness (DESIGN.md §7): drives the workload generators against
// a 3-broker cluster while a seeded fault schedule injects fsync failures,
// replication faults, produce latency spikes and election losses, and the
// driver power-cycles partition leaders mid-produce. Throughout, it checks
// the delivery invariants the paper promises (§4.3):
//
//   * every acknowledged record is fetchable after recovery,
//   * per-key order is preserved (one producer, hash partitioning),
//   * the idempotent producer never creates duplicates across retries,
//   * consumer groups resume from committed offsets and catch back up.
//
// Exit status is the verdict: 0 when every invariant held, 1 otherwise —
// the check.sh chaos-smoke leg runs `--quick` and also asserts that
// `--broken-acks` (acknowledge before durable: acks=leader on a non-synced
// log, crashed mid-soak) makes the harness FAIL, proving the invariant
// checking actually bites.
//
// --json[=path] emits BENCH_chaos_soak.json with the recovery metrics
// (leader-failover time, time to the first acked record after a restart).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/fault.h"
#include "common/status.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/group_coordinator.h"
#include "messaging/offset_manager.h"
#include "messaging/producer.h"
#include "storage/disk.h"
#include "storage/record.h"
#include "workload/generators.h"

namespace liquid::messaging {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr int kPartitions = 2;
constexpr int kRecordsPerBatch = 6;

// The seeded chaos schedule: scripting gates keep it deterministic for a
// given seed (the probability RNG is reseeded by FaultRegistry::Load).
constexpr const char* kScheduleText =
    "seed = 42\n"
    "fault.broker.produce.before_append.action = delay(200us)\n"
    "fault.broker.produce.before_append.probability = 0.05\n"
    "fault.log.sync.before.action = fail(IOError)\n"
    "fault.log.sync.before.after = 200\n"
    "fault.log.sync.before.every = 97\n"
    "fault.log.sync.before.count = 6\n"
    "fault.broker.replicate.before_append.action = fail(Unavailable)\n"
    "fault.broker.replicate.before_append.probability = 0.02\n"
    "fault.coord.election.acquire.action = fail(Unavailable)\n"
    "fault.coord.election.acquire.count = 2\n"
    "fault.broker.produce.before_ack.action = crash\n"
    "fault.broker.produce.before_ack.every = 300\n"
    "fault.broker.produce.before_ack.count = 2\n";

uint64_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Values are "<per-key-seq>|<generator payload>"; -1 if unparseable.
int64_t SeqOf(const std::string& value) {
  const size_t bar = value.find('|');
  if (bar == 0 || bar == std::string::npos) return -1;
  return std::strtoll(value.substr(0, bar).c_str(), nullptr, 10);
}

struct SoakOptions {
  int rounds = 400;
  int kill_every = 60;     // Rounds between scheduled leader kills.
  int down_rounds = 6;     // Rounds a killed broker stays down.
  bool broken_acks = false;
  bool verbose = false;
  bool no_schedule = false;
  const char* json_path = nullptr;
};

struct SoakReport {
  int64_t acked_records = 0;
  int64_t acked_recovered = 0;
  int64_t lost_acked = 0;
  int64_t duplicate_records = 0;
  int64_t order_violations = 0;
  int64_t consumer_redeliveries = 0;
  int64_t acked_not_consumed = 0;
  int64_t kills = 0;
  int64_t send_giveups = 0;
  double leader_failover_ms = 0;       // Mean over kills.
  double first_ack_after_restart_ms = 0;  // Mean over restarts.
  bool consumers_caught_up = false;
  bool ok = false;
};

class ChaosSoak {
 public:
  explicit ChaosSoak(const SoakOptions& options)
      : options_(options), generator_(workload::RumEventGenerator::Options{}) {}

  SoakReport Run() {
    ClusterConfig cluster_config;
    cluster_config.num_brokers = 3;
    Cluster cluster(cluster_config, &clock_);
    LIQUID_CHECK_OK(cluster.Start());

    TopicConfig topic;
    topic.partitions = kPartitions;
    topic.replication_factor = 3;
    topic.min_insync_replicas = 2;
    // The harness's central wager: acks must imply durability. The broken
    // mode acknowledges on the leader's in-memory append (no fsync), which
    // the crash-restart churn below must expose as lost acked records.
    topic.log.sync_mode = options_.broken_acks ? storage::SyncMode::kNone
                                               : storage::SyncMode::kEveryBatch;
    LIQUID_CHECK_OK(cluster.CreateTopic("t", topic));

    ProducerConfig producer_config;
    producer_config.acks =
        options_.broken_acks ? AckMode::kLeader : AckMode::kAll;
    producer_config.idempotent = true;
    Producer producer(&cluster, producer_config);

    storage::MemDisk offsets_disk;
    auto offsets = OffsetManager::Open(&offsets_disk, "offsets/", &clock_);
    LIQUID_CHECK_OK(offsets.status());
    GroupCoordinator coordinator(&cluster);
    ConsumerConfig consumer_config;
    consumer_config.group = "soak";
    Consumer consumer(&cluster, offsets->get(), &coordinator, "c1",
                      consumer_config);
    LIQUID_CHECK_OK(consumer.Subscribe({"t"}));

    if (!options_.no_schedule) {
      auto schedule = FaultSchedule::Parse(kScheduleText);
      LIQUID_CHECK_OK(schedule.status());
      FaultRegistry::Default()->Load(*schedule);
    }

    // down_broker < 0: all brokers alive. restart_round: when to revive it.
    int down_broker = -1;
    int restart_round = -1;
    bool awaiting_first_ack = false;  // After a kill...
    Stopwatch failover_timer;         // ...measures until the next ack.
    bool awaiting_restart_ack = false;
    Stopwatch restart_timer;
    std::vector<int64_t> failover_us;
    std::vector<int64_t> restart_ack_us;

    for (int round = 0; round < options_.rounds; ++round) {
      // 1. Produce one batch per partition (plus anything still pending from
      // rounds where the cluster was unavailable). A failed batch is retried
      // verbatim later: the producer's sequence only advances on ack, so the
      // broker's (pid, seq) dedup is what keeps re-sends duplicate-free.
      for (int p = 0; p < kPartitions; ++p) {
        if (pending_[p].empty()) pending_[p].push_back(MakeBatch(p));
        std::deque<std::vector<storage::Record>>& queue = pending_[p];
        while (!queue.empty()) {
          const TopicPartition tp{"t", p};
          auto resp = producer.SendBatch(tp, queue.front());
          if (!resp.ok()) {
            ++send_failures_;
            if (options_.verbose) {
              auto st = cluster.GetPartitionState(tp);
              std::fprintf(stderr, "round %d p%d: %s (leader=%d epoch=%d)\n",
                           round, p, resp.status().ToString().c_str(),
                           st.ok() ? st->leader : -99,
                           st.ok() ? st->leader_epoch : -99);
            }
            break;  // Keep the batch pending; retry next round.
          }
          NoteAcked(queue.front());
          queue.pop_front();
          if (awaiting_first_ack) {
            failover_us.push_back(failover_timer.ElapsedUs());
            awaiting_first_ack = false;
          }
          if (awaiting_restart_ack) {
            restart_ack_us.push_back(restart_timer.ElapsedUs());
            awaiting_restart_ack = false;
          }
        }
      }

      // 2. Consume and check order/duplicates on the delivered stream.
      auto polled = consumer.Poll(64);
      if (polled.ok()) {
        for (const ConsumerRecord& cr : *polled) CheckConsumed(cr);
      }
      if (round % 5 == 4) LIQUID_IGNORE_ERROR(consumer.Commit());

      // 3. Chaos: crash requests from the schedule plus scheduled churn.
      const bool crash_requested =
          !FaultRegistry::Default()->DrainCrashRequests().empty();
      const bool scheduled_kill =
          options_.kill_every > 0 && round % options_.kill_every == 10;
      if (down_broker < 0 && (crash_requested || scheduled_kill)) {
        const TopicPartition tp{"t", static_cast<int>(report_.kills) %
                                         kPartitions};
        auto state = cluster.GetPartitionState(tp);
        if (state.ok() && state->leader >= 0) {
          down_broker = state->leader;
          LIQUID_CHECK_OK(cluster.StopBroker(down_broker));
          // Power loss, not graceful shutdown: unsynced writes are gone.
          cluster.disk(down_broker)->SimulateCrash();
          restart_round = round + options_.down_rounds;
          ++report_.kills;
          awaiting_first_ack = true;
          failover_timer.Reset();
        }
      } else if (down_broker >= 0 && round >= restart_round) {
        LIQUID_CHECK_OK(cluster.RestartBroker(down_broker));
        down_broker = -1;
        awaiting_restart_ack = true;
        restart_timer.Reset();
      }

      cluster.ReplicationTick();
      if (round % 16 == 15) cluster.ReplicationTick();
    }

    // Final recovery: disarm chaos, revive everything, let replication and
    // the consumer group catch up, then audit the logs.
    FaultRegistry::Default()->Clear();
    if (down_broker >= 0) LIQUID_CHECK_OK(cluster.RestartBroker(down_broker));
    for (int i = 0; i < 8; ++i) cluster.ReplicationTick();
    DrainRemainingPending(&producer);
    for (int i = 0; i < 8; ++i) cluster.ReplicationTick();

    AuditLogs(&cluster);
    CatchUpConsumer(&cluster, &consumer, offsets->get());

    // At-least-once end-to-end: once the group is caught up, every acked
    // record must have been delivered at least once. Redeliveries are legal
    // (and counted); a hole is not.
    for (const auto& [key, seqs] : acked_) {
      auto it = consumed_.find(key);
      for (int64_t seq : seqs) {
        if (it == consumed_.end() || it->second.count(seq) == 0) {
          ++report_.acked_not_consumed;
        }
      }
    }

    report_.send_giveups = send_failures_;
    report_.leader_failover_ms = MeanMs(failover_us);
    report_.first_ack_after_restart_ms = MeanMs(restart_ack_us);
    report_.ok = report_.acked_records > 0 && report_.lost_acked == 0 &&
                 report_.duplicate_records == 0 &&
                 report_.order_violations == 0 &&
                 report_.acked_not_consumed == 0 && report_.consumers_caught_up;
    return report_;
  }

 private:
  std::vector<storage::Record> MakeBatch(int partition) {
    std::vector<storage::Record> batch;
    while (batch.size() < kRecordsPerBatch) {
      storage::Record record = generator_.Next(clock_.NowMs());
      if (static_cast<int>(HashKey(record.key) % kPartitions) != partition) {
        continue;  // Driver-side hash routing, fixed per key.
      }
      const int64_t seq = next_seq_[record.key]++;
      record.value = std::to_string(seq) + "|" + record.value;
      batch.push_back(std::move(record));
    }
    return batch;
  }

  void NoteAcked(const std::vector<storage::Record>& batch) {
    for (const storage::Record& record : batch) {
      acked_[record.key].push_back(SeqOf(record.value));
      ++report_.acked_records;
    }
  }

  void CheckConsumed(const ConsumerRecord& cr) {
    const int64_t seq = SeqOf(cr.record.value);
    if (seq < 0) return;
    if (!consumed_[cr.record.key].insert(seq).second) {
      // A group rebalance (leader churn expires sessions) rewinds the member
      // to its last committed offset, so re-delivery of the tail since that
      // commit is legal at-least-once behaviour (DESIGN.md §8) — counted,
      // reported, but not a failure. Log-level duplicates (idempotence) are
      // what AuditLogs gates on.
      ++report_.consumer_redeliveries;
      return;
    }
    auto [it, fresh] = consumed_high_.try_emplace(cr.record.key, seq);
    if (!fresh) {
      if (seq < it->second) ++report_.order_violations;
      it->second = std::max(it->second, seq);
    }
  }

  // Full scan of both partitions: per-key order, duplicates, and acked ⊆
  // fetched ("unacknowledged, not absent" is fine — the reverse is not).
  void AuditLogs(Cluster* cluster) {
    std::map<std::string, std::vector<int64_t>> fetched;
    for (int p = 0; p < kPartitions; ++p) {
      const TopicPartition tp{"t", p};
      auto leader = cluster->LeaderFor(tp);
      if (!leader.ok()) continue;
      int64_t cursor = 0;
      while (true) {
        auto fetch = (*leader)->Fetch(tp, cursor, 1 << 20, -1);
        if (!fetch.ok() || fetch->records.empty()) break;
        for (const storage::Record& record : fetch->records) {
          fetched[record.key].push_back(SeqOf(record.value));
        }
        cursor = fetch->records.back().offset + 1;
      }
    }
    for (const auto& [key, seqs] : fetched) {
      std::set<int64_t> seen;
      int64_t high = -1;
      for (int64_t seq : seqs) {
        if (!seen.insert(seq).second) {
          ++report_.duplicate_records;
          if (options_.verbose) {
            std::fprintf(stderr, "log dup: %s seq=%lld\n", key.c_str(),
                         static_cast<long long>(seq));
          }
        } else if (seq < high) {
          ++report_.order_violations;
        }
        high = std::max(high, seq);
      }
    }
    for (const auto& [key, seqs] : acked_) {
      auto it = fetched.find(key);
      for (int64_t seq : seqs) {
        const bool present =
            it != fetched.end() &&
            std::find(it->second.begin(), it->second.end(), seq) !=
                it->second.end();
        if (present) {
          ++report_.acked_recovered;
        } else {
          ++report_.lost_acked;
        }
      }
    }
  }

  // The group must resume from its committed offsets and drain to the end of
  // both partitions.
  void CatchUpConsumer(Cluster* cluster, Consumer* consumer,
                       OffsetManager* offsets) {
    for (int i = 0; i < 200; ++i) {
      auto polled = consumer->Poll(64);
      if (!polled.ok()) break;
      for (const ConsumerRecord& cr : *polled) CheckConsumed(cr);
      if (polled->empty()) break;
    }
    LIQUID_IGNORE_ERROR(consumer->Commit());
    bool caught_up = true;
    for (int p = 0; p < kPartitions; ++p) {
      const TopicPartition tp{"t", p};
      auto leader = cluster->LeaderFor(tp);
      auto committed = offsets->Fetch("soak", tp);
      if (!leader.ok() || !committed.ok()) {
        caught_up = false;
        continue;
      }
      auto bounds = (*leader)->OffsetBounds(tp);
      if (!bounds.ok() || committed->offset < bounds->second) {
        caught_up = false;
      }
    }
    report_.consumers_caught_up = caught_up;
  }

  void DrainRemainingPending(Producer* producer) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      bool all_empty = true;
      for (int p = 0; p < kPartitions; ++p) {
        std::deque<std::vector<storage::Record>>& queue = pending_[p];
        while (!queue.empty()) {
          auto resp = producer->SendBatch(TopicPartition{"t", p}, queue.front());
          if (!resp.ok()) {
            all_empty = false;
            break;
          }
          NoteAcked(queue.front());
          queue.pop_front();
        }
      }
      if (all_empty) return;
    }
  }

  static double MeanMs(const std::vector<int64_t>& samples_us) {
    if (samples_us.empty()) return 0;
    int64_t total = 0;
    for (int64_t v : samples_us) total += v;
    return static_cast<double>(total) / static_cast<double>(samples_us.size()) /
           1000.0;
  }

  const SoakOptions options_;
  SystemClock clock_;
  workload::RumEventGenerator generator_;
  std::map<std::string, int64_t> next_seq_;
  std::map<int, std::deque<std::vector<storage::Record>>> pending_;
  std::map<std::string, std::vector<int64_t>> acked_;
  std::map<std::string, std::set<int64_t>> consumed_;
  std::map<std::string, int64_t> consumed_high_;
  int64_t send_failures_ = 0;
  SoakReport report_;
};

int Run(const SoakOptions& options) {
  SoakReport report = ChaosSoak(options).Run();

  Table table({"metric", "value"});
  table.AddRow({"acked_records", std::to_string(report.acked_records)});
  table.AddRow({"acked_recovered", std::to_string(report.acked_recovered)});
  table.AddRow({"lost_acked", std::to_string(report.lost_acked)});
  table.AddRow({"duplicate_records", std::to_string(report.duplicate_records)});
  table.AddRow({"order_violations", std::to_string(report.order_violations)});
  table.AddRow(
      {"consumer_redeliveries", std::to_string(report.consumer_redeliveries)});
  table.AddRow({"acked_not_consumed", std::to_string(report.acked_not_consumed)});
  table.AddRow({"kills", std::to_string(report.kills)});
  table.AddRow({"send_giveups", std::to_string(report.send_giveups)});
  table.AddRow({"leader_failover_ms", Fmt(report.leader_failover_ms, 2)});
  table.AddRow(
      {"first_ack_after_restart_ms", Fmt(report.first_ack_after_restart_ms, 2)});
  table.AddRow({"consumers_caught_up", report.consumers_caught_up ? "yes" : "no"});
  table.AddRow({"verdict", report.ok ? "PASS" : "FAIL"});
  table.Print("chaos soak (3 brokers, rf=3, min_insync=2, idempotent producer, "
              "seeded fault schedule + leader power-cycles)");

  if (options.json_path != nullptr) {
    std::ofstream out(options.json_path, std::ios::trunc);
    out << "{\n  \"benchmark\": \"chaos_soak\",\n"
        << "  \"rounds\": " << options.rounds << ",\n  \"results\": [\n"
        << "    {\"name\": \"soak\""
        << ", \"acked_records\": " << report.acked_records
        << ", \"acked_recovered\": " << report.acked_recovered
        << ", \"lost_acked\": " << report.lost_acked
        << ", \"duplicate_records\": " << report.duplicate_records
        << ", \"order_violations\": " << report.order_violations
        << ", \"consumer_redeliveries\": " << report.consumer_redeliveries
        << ", \"acked_not_consumed\": " << report.acked_not_consumed
        << ", \"kills\": " << report.kills
        << ", \"leader_failover_ms\": " << Fmt(report.leader_failover_ms, 3)
        << ", \"first_ack_after_restart_ms\": "
        << Fmt(report.first_ack_after_restart_ms, 3) << "}\n  ]\n}\n";
    if (!out) {
      std::fprintf(stderr, "warning: could not write %s\n", options.json_path);
    } else {
      std::printf("wrote %s\n", options.json_path);
    }
  }
  return report.ok ? 0 : 1;
}

}  // namespace
}  // namespace liquid::messaging

int main(int argc, char** argv) {
  liquid::messaging::SoakOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.rounds = 80;
      options.kill_every = 30;
      options.down_rounds = 4;
    } else if (std::strcmp(argv[i], "--broken-acks") == 0) {
      options.broken_acks = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      options.verbose = true;
    } else if (std::strcmp(argv[i], "--no-schedule") == 0) {
      options.no_schedule = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      options.json_path = "BENCH_chaos_soak.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      options.json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--broken-acks] [--json[=path]]\n",
                   argv[0]);
      return 2;
    }
  }
  return liquid::messaging::Run(options);
}
