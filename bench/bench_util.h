#ifndef LIQUID_BENCH_BENCH_UTIL_H_
#define LIQUID_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace liquid::bench {

/// Wall-clock stopwatch (microseconds).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  int64_t ElapsedUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Fixed-width table printer for experiment reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print(const std::string& title) const {
    std::printf("\n=== %s ===\n", title.c_str());
    std::vector<size_t> widths(headers_.size());
    for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        if (row[i].size() > widths[i]) widths[i] = row[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace liquid::bench

#endif  // LIQUID_BENCH_BENCH_UTIL_H_
