// Experiment E5 (§4.2 incremental processing): maintaining statistics over a
// periodically updated feed. Incremental (checkpoint + explicit state) cost
// stays constant per round; full re-processing grows linearly with total data
// ("reading all data each time that it changes would be infeasible — the
// required time would increase linearly with data size").

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "core/liquid.h"
#include "processing/operators.h"

namespace liquid::core {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr int kBatch = 5000;
constexpr int kRounds = 6;

void Run() {
  Liquid::Options options;
  options.cluster.num_brokers = 3;
  auto liquid = Liquid::Start(options);
  if (!liquid.ok()) return;

  FeedOptions feed;
  feed.partitions = 1;
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("events", feed));

  auto produce_batch = [&](int round) {
    auto producer = (*liquid)->NewProducer();
    for (int i = 0; i < kBatch; ++i) {
      LIQUID_CHECK_OK(producer->Send("events",
                     storage::Record::KeyValue(
                         "k" + std::to_string((round * kBatch + i) % 500), "1")));
    }
    LIQUID_CHECK_OK(producer->Flush());
  };

  // Incremental job: one long-lived job with checkpoints + state.
  processing::JobConfig inc_config;
  inc_config.name = "incremental-stats";
  inc_config.inputs = {"events"};
  inc_config.stores = {
      {"counts", processing::StoreConfig::Kind::kInMemory, true}};
  inc_config.poll_max_records = 2048;
  auto inc_job = (*liquid)->SubmitJob(inc_config, [] {
    return std::make_unique<processing::KeyedCounterTask>("counts");
  });
  if (!inc_job.ok()) return;

  Table table({"round", "total_records", "incremental_us", "incremental_recs",
               "full_reprocess_us", "full_recs", "full/incremental"});
  for (int round = 1; round <= kRounds; ++round) {
    produce_batch(round);

    Stopwatch inc_timer;
    auto inc_processed = (*inc_job)->RunUntilIdle();
    const int64_t inc_us = inc_timer.ElapsedUs();

    // Full re-process: a fresh group reads everything from offset 0.
    processing::JobConfig full_config;
    full_config.name = "full-round" + std::to_string(round);
    full_config.inputs = {"events"};
    full_config.stores = {
        {"counts", processing::StoreConfig::Kind::kInMemory, false}};
    full_config.poll_max_records = 2048;
    Stopwatch full_timer;
    auto full_job = (*liquid)->SubmitJob(full_config, [] {
      return std::make_unique<processing::KeyedCounterTask>("counts");
    });
    auto full_processed = (*full_job)->RunUntilIdle();
    const int64_t full_us = full_timer.ElapsedUs();
    LIQUID_CHECK_OK((*liquid)->StopJob(full_config.name));

    table.AddRow({std::to_string(round), std::to_string(round * kBatch),
                  std::to_string(inc_us), std::to_string(*inc_processed),
                  std::to_string(full_us), std::to_string(*full_processed),
                  Fmt(static_cast<double>(full_us) /
                          static_cast<double>(inc_us + 1),
                      1) + "x"});
  }
  table.Print(
      "E5: incremental vs full re-processing (cost per refresh round, "
      "5000 new records/round)");
}

}  // namespace
}  // namespace liquid::core

int main() {
  liquid::core::Run();
  return 0;
}
