// Experiment E1 (§3.1, Fig. 3): consumer-group semantics at scale. Adding
// consumers to a group splits the partitions (queue semantics -> parallel
// drain speedup); adding GROUPS multiplies delivery (pub/sub) without
// re-reading costs for producers.
//
// Paper shape: drain time drops with group size up to the partition count;
// each extra group sees the full feed independently.

#include <algorithm>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/consumer.h"
#include "messaging/offset_manager.h"
#include "messaging/producer.h"

namespace liquid::messaging {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr int kPartitions = 8;
constexpr int kRecords = 40'000;

struct Rig {
  SystemClock clock;
  std::unique_ptr<Cluster> cluster;
  storage::MemDisk offsets_disk;
  std::unique_ptr<OffsetManager> offsets;
  std::unique_ptr<GroupCoordinator> coordinator;
};

std::unique_ptr<Rig> BuildRig() {
  auto rig = std::make_unique<Rig>();
  ClusterConfig config;
  config.num_brokers = 3;
  rig->cluster = std::make_unique<Cluster>(config, &rig->clock);
  LIQUID_CHECK_OK(rig->cluster->Start());
  TopicConfig topic;
  topic.partitions = kPartitions;
  topic.replication_factor = 1;
  LIQUID_CHECK_OK(rig->cluster->CreateTopic("t", topic));
  rig->offsets =
      std::move(OffsetManager::Open(&rig->offsets_disk, "o/", &rig->clock))
          .value();
  rig->coordinator = std::make_unique<GroupCoordinator>(rig->cluster.get());

  ProducerConfig producer_config;
  producer_config.partitioner = PartitionerType::kRoundRobin;
  producer_config.batch_max_records = 256;
  Producer producer(rig->cluster.get(), producer_config);
  for (int i = 0; i < kRecords; ++i) {
    LIQUID_CHECK_OK(producer.Send("t", storage::Record::KeyValue("k", std::string(64, 'v'))));
  }
  LIQUID_CHECK_OK(producer.Flush());
  return rig;
}

/// Drains the topic with `members` consumers in one group. Since all members
/// run interleaved on one host thread, the parallel drain time is modeled as
/// the busiest member's share: records are consumed exactly once (queue
/// semantics) and split by partition assignment, so with P partitions and M
/// members the bottleneck member owns ceil(P/M) partitions.
struct DrainResult {
  int64_t total = 0;
  int64_t max_per_member = 0;
  int active_members = 0;
};

DrainResult DrainWithGroupSize(Rig* rig, int members, const std::string& group) {
  std::vector<std::unique_ptr<Consumer>> consumers;
  for (int i = 0; i < members; ++i) {
    ConsumerConfig config;
    config.group = group;
    consumers.push_back(std::make_unique<Consumer>(
        rig->cluster.get(), rig->offsets.get(), rig->coordinator.get(),
        group + "-m" + std::to_string(i), config));
    LIQUID_CHECK_OK(consumers.back()->Subscribe({"t"}));
  }
  std::vector<int64_t> per_member(members, 0);
  int idle = 0;
  while (idle < 2) {
    int64_t round = 0;
    for (int i = 0; i < members; ++i) {
      auto records = consumers[i]->Poll(512);
      if (records.ok()) {
        round += static_cast<int64_t>(records->size());
        per_member[i] += static_cast<int64_t>(records->size());
      }
    }
    idle = round == 0 ? idle + 1 : 0;
  }
  DrainResult result;
  for (int64_t n : per_member) {
    result.total += n;
    result.max_per_member = std::max(result.max_per_member, n);
    if (n > 0) ++result.active_members;
  }
  return result;
}

void Run() {
  Table table({"group_members", "active", "records_total",
               "busiest_member_records", "parallel_drain_speedup"});
  for (int members : {1, 2, 4, 8, 16}) {
    auto rig = BuildRig();
    auto result =
        DrainWithGroupSize(rig.get(), members, "g" + std::to_string(members));
    table.AddRow({std::to_string(members),
                  std::to_string(result.active_members),
                  std::to_string(result.total),
                  std::to_string(result.max_per_member),
                  Fmt(static_cast<double>(result.total) /
                          static_cast<double>(result.max_per_member),
                      2) + "x"});
  }
  table.Print(
      "E1a: queue semantics — load sharing vs consumer-group size (8 "
      "partitions; drain time on M machines = busiest member's share; "
      "members beyond the partition count idle)");

  // Pub/sub across groups: every group independently consumes everything.
  auto rig = BuildRig();
  Table groups({"independent_groups", "total_records_delivered", "wall_us"});
  for (int n : {1, 2, 4}) {
    Stopwatch timer;
    int64_t delivered = 0;
    for (int g = 0; g < n; ++g) {
      ConsumerConfig config;
      config.group = "fan" + std::to_string(n) + "-" + std::to_string(g);
      Consumer consumer(rig->cluster.get(), rig->offsets.get(),
                        rig->coordinator.get(), "m", config);
      LIQUID_CHECK_OK(consumer.Subscribe({"t"}));
      while (true) {
        auto records = consumer.Poll(512);
        if (!records.ok() || records->empty()) break;
        delivered += static_cast<int64_t>(records->size());
      }
    }
    groups.AddRow({std::to_string(n), std::to_string(delivered),
                   std::to_string(timer.ElapsedUs())});
  }
  groups.Print(
      "E1b: pub/sub semantics — each group receives the full feed "
      "independently (40k records)");
}

}  // namespace
}  // namespace liquid::messaging

int main() {
  liquid::messaging::Run();
  return 0;
}
