// Experiment E3 (§4.1 "anti-caching"): head-of-log reads are served from RAM
// (the freshly appended pages stay cached until flushed behind); rewind reads
// pay simulated disk cost on first touch, after which sequential prefetching
// warms them ("after typically a few seconds, successive reads become fast
// due to prefetching").
//
// Paper shape: tail reads orders of magnitude cheaper than cold rewinds;
// a second sequential pass over rewound data approaches tail-read speed.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/clock.h"
#include "common/random.h"
#include "storage/disk.h"
#include "storage/log.h"
#include "storage/page_cache.h"

namespace liquid::storage {
namespace {

constexpr int64_t kLogRecords = 200'000;
constexpr size_t kValueBytes = 100;

struct Rig {
  std::unique_ptr<MemDisk> disk;
  std::unique_ptr<PageCache> cache;
  std::unique_ptr<Log> log;
  SystemClock clock;
};

std::unique_ptr<Rig> BuildRig(size_t cache_mb) {
  auto rig = std::make_unique<Rig>();
  rig->disk = std::make_unique<MemDisk>(DiskLatencyModel::ScaledHdd());
  PageCacheConfig cache_config;
  cache_config.capacity_bytes = cache_mb << 20;
  cache_config.flush_after_ms = 50;
  cache_config.readahead_pages = 8;
  rig->cache = std::make_unique<PageCache>(cache_config, &rig->clock);
  LogConfig config;
  config.segment_bytes = 8 << 20;
  auto log = Log::Open(rig->disk.get(), rig->cache.get(), "l/", config,
                       &rig->clock);
  rig->log = std::move(log).value();

  Random rng(42);
  std::vector<Record> batch;
  for (int i = 0; i < 1000; ++i) {
    batch.push_back(Record::KeyValue("k", rng.Bytes(kValueBytes)));
  }
  for (int64_t have = 0; have < kLogRecords; have += 1000) {
    for (auto& r : batch) r.offset = -1;
    LIQUID_CHECK_OK(rig->log->Append(&batch));
  }
  return rig;
}

/// Consumer following the head: always hits the freshly written pages.
void BM_TailRead(benchmark::State& state) {
  auto rig = BuildRig(16);
  std::vector<Record> out;
  for (auto _ : state) {
    out.clear();
    LIQUID_CHECK_OK(rig->log->Read(rig->log->end_offset() - 100, 64 * 1024, &out));
  }
  state.counters["cache_hit_pct"] =
      100.0 * static_cast<double>(rig->cache->hits()) /
      static_cast<double>(rig->cache->hits() + rig->cache->misses() + 1);
}
BENCHMARK(BM_TailRead)->Unit(benchmark::kMicrosecond)->Iterations(200);

/// Rewind to the beginning: cold pages, disk-bound on first pass. The cache
/// is far smaller than the log, so every iteration rewinds cold.
void BM_RewindReadCold(benchmark::State& state) {
  auto rig = BuildRig(1);  // 1 MiB cache: the 20+MB log cannot fit.
  std::vector<Record> out;
  int64_t offset = 0;
  for (auto _ : state) {
    out.clear();
    LIQUID_CHECK_OK(rig->log->Read(offset, 64 * 1024, &out));
    offset += 50'000;  // Jump far: defeat read-ahead between iterations.
    if (offset > kLogRecords - 1000) offset = 0;
  }
  state.counters["cache_hit_pct"] =
      100.0 * static_cast<double>(rig->cache->hits()) /
      static_cast<double>(rig->cache->hits() + rig->cache->misses() + 1);
}
BENCHMARK(BM_RewindReadCold)->Unit(benchmark::kMicrosecond)->Iterations(200);

/// Sequential rewind scan: the first pass pays disk, prefetch amortizes it.
void BM_RewindReadSequential(benchmark::State& state) {
  auto rig = BuildRig(64);  // Cache large enough once warmed.
  std::vector<Record> out;
  int64_t offset = 0;
  for (auto _ : state) {
    out.clear();
    LIQUID_CHECK_OK(rig->log->Read(offset, 64 * 1024, &out));
    offset = out.empty() ? 0 : out.back().offset + 1;
    if (offset >= kLogRecords) offset = 0;
  }
  state.counters["cache_hit_pct"] =
      100.0 * static_cast<double>(rig->cache->hits()) /
      static_cast<double>(rig->cache->hits() + rig->cache->misses() + 1);
}
BENCHMARK(BM_RewindReadSequential)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(800);

/// Random access without any page cache: every read pays the disk.
void BM_RandomReadNoCache(benchmark::State& state) {
  MemDisk disk{DiskLatencyModel::ScaledHdd()};
  SystemClock clock;
  LogConfig config;
  config.segment_bytes = 8 << 20;
  auto log = Log::Open(&disk, nullptr, "l/", config, &clock);
  Random rng(42);
  std::vector<Record> batch;
  for (int i = 0; i < 1000; ++i) {
    batch.push_back(Record::KeyValue("k", rng.Bytes(kValueBytes)));
  }
  for (int64_t have = 0; have < 50'000; have += 1000) {
    for (auto& r : batch) r.offset = -1;
    LIQUID_CHECK_OK((*log)->Append(&batch));
  }
  std::vector<Record> out;
  Random pick(7);
  for (auto _ : state) {
    out.clear();
    LIQUID_CHECK_OK(
        (*log)->Read(static_cast<int64_t>(pick.Uniform(50'000)), 4096, &out));
  }
}
BENCHMARK(BM_RandomReadNoCache)->Unit(benchmark::kMicrosecond)->Iterations(200);

}  // namespace
}  // namespace liquid::storage

BENCHMARK_MAIN();
