// Contention benchmark for the broker hot path: N producer threads publish
// into M partitions of one broker, sweeping N and M. A broker sharded by
// partition (per-replica locks, encode-outside-lock appends) should scale
// aggregate throughput with min(N, M); a broker serialized on one global
// lock stays flat no matter how many partitions it hosts.
//
// Legs:
//   - disjoint:   thread i owns partition (i % M) — the partition-parallel
//                 best case the paper's topic sharding exists for (§3.1).
//   - contended:  every thread round-robins over all partitions — mixed
//                 ownership, exercises lock handoff between threads.
//   - same-partition (M=1 column): all threads target one partition — the
//                 worst case; only encode-outside-lock helps here.
//
// --json[=path] additionally emits BENCH_parallel_produce.json for CI trend
// tracking (scripts/bench_compare.py diffs two such files).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/metadata.h"
#include "storage/record.h"

namespace liquid::messaging {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr int kRecordsPerBatch = 100;
constexpr size_t kValueBytes = 100;

struct SweepPoint {
  int threads = 0;
  int partitions = 0;
  std::string mode;        // "disjoint" or "contended"
  int64_t records = 0;
  int64_t wall_us = 0;
  double records_per_sec = 0;
  /// Total time produce requests spent waiting to acquire their partition's
  /// replica lock (sum over all requests of the sweep point). The direct
  /// observable of broker-side serialization: on a single-CPU host — where
  /// wall-clock cannot show parallel speedup at all — this is the number
  /// that separates a sharded broker (near zero on disjoint partitions)
  /// from a monolithic one (every request queues on the broker lock).
  int64_t lock_wait_us = 0;
};

std::vector<storage::Record> MakeBatch(Random* rng) {
  std::vector<storage::Record> batch;
  batch.reserve(kRecordsPerBatch);
  for (int i = 0; i < kRecordsPerBatch; ++i) {
    batch.push_back(storage::Record::KeyValue(
        "key" + std::to_string(rng->Uniform(1000)), rng->Bytes(kValueBytes)));
  }
  return batch;
}

/// One sweep point: `threads` producers × `partitions` partitions × 1 broker.
/// When `disjoint`, thread i sticks to partition i % partitions; otherwise
/// every thread cycles over all partitions (lock handoff between threads).
SweepPoint RunPoint(int threads, int partitions, bool disjoint,
                    int batches_per_thread) {
  SystemClock clock;
  ClusterConfig config;
  config.num_brokers = 1;
  Cluster cluster(config, &clock);
  LIQUID_CHECK_OK(cluster.Start());
  TopicConfig topic;
  topic.partitions = partitions;
  topic.replication_factor = 1;
  LIQUID_CHECK_OK(cluster.CreateTopic("bench", topic));
  Broker* broker = cluster.broker(0);

  // Pre-build per-thread batches so the timed region measures the broker,
  // not record construction.
  std::vector<std::vector<storage::Record>> batches;
  for (int t = 0; t < threads; ++t) {
    Random rng(42 + t);
    batches.push_back(MakeBatch(&rng));
  }

  // The registry is process-global and every point uses broker id 0, so the
  // per-point lock wait is the histogram's delta across the timed region.
  Histogram* lock_wait =
      MetricsRegistry::Default()->GetHistogram("liquid.broker.0.produce_lock_wait_us");
  const int64_t lock_wait_before = lock_wait->Stats().sum;

  Stopwatch timer;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < batches_per_thread; ++i) {
        const int p = disjoint ? t % partitions : (t + i) % partitions;
        const TopicPartition tp{"bench", p};
        std::vector<storage::Record> batch = batches[t];  // Fresh offsets.
        auto resp = broker->Produce(tp, std::move(batch), AckMode::kLeader);
        LIQUID_CHECK_OK(resp.status());
      }
    });
  }
  for (auto& worker : workers) worker.join();

  SweepPoint point;
  point.threads = threads;
  point.partitions = partitions;
  point.mode = disjoint ? "disjoint" : "contended";
  point.records =
      static_cast<int64_t>(threads) * batches_per_thread * kRecordsPerBatch;
  point.wall_us = timer.ElapsedUs();
  point.records_per_sec =
      static_cast<double>(point.records) * 1e6 /
      static_cast<double>(point.wall_us > 0 ? point.wall_us : 1);
  point.lock_wait_us = lock_wait->Stats().sum - lock_wait_before;
  return point;
}

void Run(const char* json_path, bool quick) {
  const int batches_per_thread = quick ? 50 : 500;
  const std::vector<int> thread_counts = quick ? std::vector<int>{1, 4}
                                               : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> partition_counts =
      quick ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 8};

  std::vector<SweepPoint> points;
  Table table({"mode", "threads", "partitions", "records", "wall_us",
               "records_per_sec", "speedup_vs_1thr", "lock_wait_us"});
  for (const bool disjoint : {true, false}) {
    for (int partitions : partition_counts) {
      double base_rate = 0;
      for (int threads : thread_counts) {
        SweepPoint point =
            RunPoint(threads, partitions, disjoint, batches_per_thread);
        if (threads == 1) base_rate = point.records_per_sec;
        points.push_back(point);
        table.AddRow({point.mode, std::to_string(threads),
                      std::to_string(partitions), std::to_string(point.records),
                      std::to_string(point.wall_us),
                      Fmt(point.records_per_sec, 0),
                      Fmt(point.records_per_sec / base_rate, 2) + "x",
                      std::to_string(point.lock_wait_us)});
      }
    }
  }
  table.Print(
      "parallel produce: aggregate throughput, N producer threads x M "
      "partitions x 1 broker (acks=leader, " +
      std::to_string(kRecordsPerBatch) + "-record batches)");

  if (json_path != nullptr) {
    std::ofstream out(json_path, std::ios::trunc);
    out << "{\n  \"benchmark\": \"parallel_produce\",\n"
        << "  \"records_per_batch\": " << kRecordsPerBatch
        << ",\n  \"value_bytes\": " << kValueBytes
        << ",\n  \"batches_per_thread\": " << batches_per_thread
        << ",\n  \"results\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      out << "    {\"name\": \"" << p.mode << "/t" << p.threads << "/p"
          << p.partitions << "\", \"threads\": " << p.threads
          << ", \"partitions\": " << p.partitions
          << ", \"records\": " << p.records << ", \"wall_us\": " << p.wall_us
          << ", \"records_per_sec\": " << Fmt(p.records_per_sec, 0)
          << ", \"lock_wait_us\": " << p.lock_wait_us << "}"
          << (i + 1 < points.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out) {
      std::fprintf(stderr, "warning: could not write %s\n", json_path);
    } else {
      std::printf("wrote %s\n", json_path);
    }
  }
}

}  // namespace
}  // namespace liquid::messaging

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_parallel_produce.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: %s [--json[=path]] [--quick]\n", argv[0]);
      return 2;
    }
  }
  liquid::messaging::Run(json_path, quick);
  return 0;
}
