// Experiment E7 (§4.3): the replication side of the performance/durability
// trade-off. Throughput by ack level and replication factor, and data loss
// under leader failure for each level.
//
// Paper shape: acks=0 > acks=1 > acks=all in throughput; only acks=all (with
// replication) survives a leader crash without losing acknowledged records.
//
// The single-node (fsync) side of the same trade-off lives in E16
// (bench_insert_sweep): LogConfig::sync_mode none/every_batch/group, where
// group commit coalesces concurrent producers' fsyncs (DESIGN.md §6c). The
// E7b no-acked-loss invariant extends there via
// tests/messaging/group_commit_produce_test.cc.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/producer.h"

namespace liquid::messaging {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr int kRecords = 20'000;

const char* AckName(AckMode acks) {
  switch (acks) {
    case AckMode::kNone:
      return "acks=0";
    case AckMode::kLeader:
      return "acks=1";
    case AckMode::kAll:
      return "acks=all";
  }
  return "?";
}

/// Produce throughput for a given ack mode and replication factor.
double MeasureThroughput(AckMode acks, int rf) {
  SystemClock clock;
  ClusterConfig config;
  config.num_brokers = 3;
  Cluster cluster(config, &clock);
  LIQUID_CHECK_OK(cluster.Start());
  TopicConfig topic;
  topic.partitions = 1;
  topic.replication_factor = rf;
  LIQUID_CHECK_OK(cluster.CreateTopic("t", topic));

  const TopicPartition tp{"t", 0};
  auto leader = cluster.LeaderFor(tp);
  std::vector<storage::Record> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(storage::Record::KeyValue("k", std::string(100, 'v')));
  }
  Stopwatch timer;
  for (int sent = 0; sent < kRecords; sent += 100) {
    for (auto& r : batch) r.offset = -1;
    LIQUID_CHECK_OK((*leader)->Produce(tp, batch, acks));
  }
  const double seconds = static_cast<double>(timer.ElapsedUs()) / 1e6;
  return static_cast<double>(kRecords) / seconds;
}

/// Acknowledged-record loss when the leader dies immediately after a burst.
int64_t MeasureLossOnFailover(AckMode acks, int rf) {
  SystemClock clock;
  ClusterConfig config;
  config.num_brokers = 3;
  Cluster cluster(config, &clock);
  LIQUID_CHECK_OK(cluster.Start());
  TopicConfig topic;
  topic.partitions = 1;
  topic.replication_factor = rf;
  LIQUID_CHECK_OK(cluster.CreateTopic("t", topic));
  const TopicPartition tp{"t", 0};

  int64_t acked = 0;
  auto leader = cluster.LeaderFor(tp);
  for (int i = 0; i < 1000; ++i) {
    std::vector<storage::Record> one{storage::Record::KeyValue("k", "v")};
    auto resp = (*leader)->Produce(tp, one, acks);
    if (resp.ok()) ++acked;
  }
  // Crash the leader before any pull-replication happens.
  LIQUID_CHECK_OK(cluster.StopBroker(cluster.GetPartitionState(tp)->leader));
  cluster.ReplicationTick();
  cluster.ReplicationTick();

  auto survivor = cluster.LeaderFor(tp);
  if (!survivor.ok()) return acked;  // Everything lost (partition offline).
  int64_t survived = 0;
  int64_t cursor = 0;
  while (true) {
    auto fetch = (*survivor)->Fetch(tp, cursor, 1 << 20, -1);
    if (!fetch.ok() || fetch->records.empty()) break;
    survived += static_cast<int64_t>(fetch->records.size());
    cursor = fetch->records.back().offset + 1;
  }
  return acked - survived;
}

void Run() {
  Table throughput({"ack_mode", "rf=1", "rf=2", "rf=3", "(records/s)"});
  for (AckMode acks : {AckMode::kNone, AckMode::kLeader, AckMode::kAll}) {
    std::vector<std::string> row{AckName(acks)};
    for (int rf : {1, 2, 3}) {
      row.push_back(Fmt(MeasureThroughput(acks, rf) / 1000.0, 1) + "k/s");
    }
    row.push_back("");
    throughput.AddRow(row);
  }
  throughput.Print("E7a: produce throughput by ack level x replication factor");

  Table loss({"ack_mode", "rf", "acked_records_lost_on_leader_crash"});
  for (int rf : {1, 3}) {
    for (AckMode acks : {AckMode::kLeader, AckMode::kAll}) {
      loss.AddRow({AckName(acks), std::to_string(rf),
                   std::to_string(MeasureLossOnFailover(acks, rf))});
    }
  }
  loss.Print(
      "E7b: durability — acknowledged records lost when the leader crashes "
      "before pull replication (1000 acked)");
}

}  // namespace
}  // namespace liquid::messaging

int main() {
  liquid::messaging::Run();
  return 0;
}
