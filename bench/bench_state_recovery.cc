// Experiment E9 (§3.2, §4.1): stateful task recovery from the changelog.
// Restore time grows with changelog length; compacting the changelog first
// makes recovery proportional to the number of LIVE keys instead
// ("performing log compaction not only reduces the changelog size, but it
// also allows for faster recovery").

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "core/liquid.h"
#include "messaging/broker.h"
#include "processing/operators.h"

namespace liquid::core {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

void Run() {
  Table table({"updates_per_key", "changelog_records", "restore_us",
               "restore_after_compaction_us", "speedup"});

  for (int updates_per_key : {1, 4, 16, 64}) {
    Liquid::Options options;
    options.cluster.num_brokers = 3;
    auto liquid = Liquid::Start(options);
    FeedOptions feed;
    feed.partitions = 1;
    LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("events", feed));

    const int keys = 1000;
    auto producer = (*liquid)->NewProducer();
    for (int round = 0; round < updates_per_key; ++round) {
      for (int k = 0; k < keys; ++k) {
        LIQUID_CHECK_OK(producer->Send("events", storage::Record::KeyValue(
                                     "user" + std::to_string(k), "e")));
      }
    }
    LIQUID_CHECK_OK(producer->Flush());

    processing::JobConfig config;
    config.name = "counter";
    config.inputs = {"events"};
    config.stores = {{"counts", processing::StoreConfig::Kind::kInMemory, true}};
    config.poll_max_records = 4096;
    {
      auto job = (*liquid)->SubmitJob(config, [] {
        return std::make_unique<processing::KeyedCounterTask>("counts");
      });
      LIQUID_CHECK_OK((*job)->RunUntilIdle());
      LIQUID_CHECK_OK((*liquid)->StopJob("counter"));
    }

    const std::string changelog =
        processing::Job::ChangelogTopic("counter", "counts");
    const messaging::TopicPartition changelog_tp{changelog, 0};
    auto leader = (*liquid)->cluster()->LeaderFor(changelog_tp);
    const int64_t changelog_records = *(*leader)->LogEndOffset(changelog_tp);

    // Restore on a fresh "machine" (container rescheduled): time to first
    // readiness.
    auto measure_restore = [&]() -> int64_t {
      storage::MemDisk fresh_disk;
      Stopwatch timer;
      auto job = processing::Job::Create(
          (*liquid)->cluster(), (*liquid)->offsets(), (*liquid)->groups(),
          &fresh_disk, config, [] {
            return std::make_unique<processing::KeyedCounterTask>("counts");
          });
      LIQUID_CHECK_OK((*job)->RunOnce());  // Triggers eager task creation + restore.
      const int64_t us = timer.ElapsedUs();
      LIQUID_CHECK_OK((*job)->Stop());
      return us;
    };

    const int64_t restore_us = measure_restore();
    // Compact the changelog (broker-side maintenance, §4.1), then restore.
    LIQUID_CHECK_OK((*leader)->CompactPartition(changelog_tp));
    const int64_t compacted_us = measure_restore();

    table.AddRow({std::to_string(updates_per_key),
                  std::to_string(changelog_records),
                  std::to_string(restore_us), std::to_string(compacted_us),
                  Fmt(static_cast<double>(restore_us) /
                          static_cast<double>(compacted_us + 1),
                      1) + "x"});
  }
  table.Print(
      "E9: stateful-task recovery from changelog (1000 live keys; restore on "
      "a fresh machine)");
}

}  // namespace
}  // namespace liquid::core

int main() {
  liquid::core::Run();
  return 0;
}
