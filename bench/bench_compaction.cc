// Experiment E4 (§4.1 "log compaction"): compaction of a keyed feed keeps
// only the latest record per key, shrinking the changelog and making state
// recovery faster ("performing log compaction not only reduces the changelog
// size, but it also allows for faster recovery").
//
// Paper shape: size reduction grows with updates-per-key; recovery from the
// compacted log is roughly updates-per-key times faster.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "storage/disk.h"
#include "storage/log.h"

namespace liquid::storage {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

/// Builds a keyed log with `keys` distinct keys receiving `updates_per_key`
/// updates each (Zipf-ordered arrivals), then measures compaction and the
/// state-recovery scan before/after.
void RunSweep() {
  Table table({"keys", "updates/key", "bytes_before", "bytes_after",
               "size_reduction", "recover_before_us", "recover_after_us",
               "recovery_speedup"});

  for (int updates_per_key : {2, 8, 32, 128}) {
    const int keys = 2000;
    MemDisk disk;
    SystemClock clock;
    LogConfig config;
    config.segment_bytes = 256 * 1024;
    config.compaction_enabled = true;
    auto log = Log::Open(&disk, nullptr, "c/", config, &clock);
    Random rng(42);

    for (int round = 0; round < updates_per_key; ++round) {
      std::vector<Record> batch;
      batch.reserve(keys);
      for (int k = 0; k < keys; ++k) {
        batch.push_back(Record::KeyValue("user" + std::to_string(k),
                                         rng.Bytes(64)));
      }
      LIQUID_CHECK_OK((*log)->Append(&batch));
    }

    // Recovery = replay every surviving record into a state map.
    auto recover = [&]() -> std::pair<int64_t, size_t> {
      Stopwatch timer;
      std::map<std::string, std::string> state;
      int64_t cursor = (*log)->start_offset();
      std::vector<Record> chunk;
      while (cursor < (*log)->end_offset()) {
        chunk.clear();
        LIQUID_CHECK_OK((*log)->Read(cursor, 1 << 20, &chunk));
        if (chunk.empty()) break;
        for (auto& record : chunk) state[record.key] = record.value;
        cursor = chunk.back().offset + 1;
      }
      return {timer.ElapsedUs(), state.size()};
    };

    const uint64_t bytes_before = (*log)->size_bytes();
    auto [before_us, before_keys] = recover();

    auto stats = (*log)->Compact();
    const uint64_t bytes_after = (*log)->size_bytes();
    auto [after_us, after_keys] = recover();

    if (!stats.ok() || before_keys != after_keys) {
      std::printf("ERROR: compaction changed the materialized view!\n");
      return;
    }
    table.AddRow({std::to_string(keys), std::to_string(updates_per_key),
                  std::to_string(bytes_before), std::to_string(bytes_after),
                  Fmt(static_cast<double>(bytes_before) /
                          static_cast<double>(bytes_after),
                      1) + "x",
                  std::to_string(before_us), std::to_string(after_us),
                  Fmt(static_cast<double>(before_us) /
                          static_cast<double>(after_us + 1),
                      1) + "x"});
  }
  table.Print(
      "E4: log compaction — changelog size & recovery time (2000 keys)");
}

/// Skewed updates (profile-update shape): the hot keys dominate, compaction
/// wins even more.
void RunSkewed() {
  Table table({"distribution", "records", "bytes_before", "bytes_after",
               "size_reduction"});
  for (double theta : {0.5, 0.9, 0.99}) {
    MemDisk disk;
    SystemClock clock;
    LogConfig config;
    config.segment_bytes = 256 * 1024;
    config.compaction_enabled = true;
    auto log = Log::Open(&disk, nullptr, "z/", config, &clock);
    ZipfGenerator zipf(5000, theta, 7);
    Random rng(1);
    const int total = 50'000;
    std::vector<Record> batch;
    for (int i = 0; i < total; ++i) {
      batch.push_back(Record::KeyValue("user" + std::to_string(zipf.Next()),
                                       rng.Bytes(64)));
      if (batch.size() == 1000) {
        LIQUID_CHECK_OK((*log)->Append(&batch));
        batch.clear();
      }
    }
    const uint64_t before = (*log)->size_bytes();
    LIQUID_CHECK_OK((*log)->Compact());
    const uint64_t after = (*log)->size_bytes();
    table.AddRow({"zipf(theta=" + Fmt(theta, 2) + ")", std::to_string(total),
                  std::to_string(before), std::to_string(after),
                  Fmt(static_cast<double>(before) / static_cast<double>(after),
                      1) + "x"});
  }
  table.Print("E4b: compaction under skewed (profile-update) workloads");
}

}  // namespace
}  // namespace liquid::storage

int main() {
  liquid::storage::RunSweep();
  liquid::storage::RunSkewed();
  return 0;
}
