// Experiment E6 (§1 limitation 1, §2.1): end-to-end pipeline latency as the
// number of ETL stages grows. The MR/DFS stack materializes every stage to
// the DFS and pays a per-job scheduling overhead, so latency grows steeply
// with stage count; Liquid's nearline pipeline passes records through the
// messaging layer with a small per-stage cost.
//
// Paper shape: both grow linearly in stages, but the MR/DFS slope is orders
// of magnitude larger (minutes/hours vs seconds at LinkedIn; here scaled
// milliseconds vs microseconds).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "core/liquid.h"
#include "mapreduce/mapreduce.h"
#include "processing/pipeline.h"

namespace liquid::core {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr int kRecords = 500;
constexpr int64_t kMrStartupMs = 20;  // Scaled-down cluster scheduling cost.

/// Liquid: N map stages chained through feeds; latency = produce-to-final
/// availability for a batch of records.
int64_t RunLiquidPipeline(int stages) {
  Liquid::Options options;
  options.cluster.num_brokers = 3;
  auto liquid = Liquid::Start(options);
  FeedOptions feed;
  feed.partitions = 1;
  for (int i = 0; i <= stages; ++i) {
    LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("s" + std::to_string(i), feed));
  }
  processing::Pipeline pipeline((*liquid)->cluster(), (*liquid)->offsets(),
                                (*liquid)->groups(), (*liquid)->state_disk());
  for (int i = 0; i < stages; ++i) {
    LIQUID_CHECK_OK(pipeline.AddMapStage(
        "hop" + std::to_string(i), "s" + std::to_string(i),
        "s" + std::to_string(i + 1),
        [](const messaging::ConsumerRecord& envelope) {
          storage::Record out = envelope.record;
          out.value += "x";  // The "ETL" transformation.
          return std::optional<storage::Record>(std::move(out));
        }));
  }

  auto producer = (*liquid)->NewProducer();
  Stopwatch timer;
  for (int i = 0; i < kRecords; ++i) {
    LIQUID_CHECK_OK(producer->Send("s0", storage::Record::KeyValue("k" + std::to_string(i), "v")));
  }
  LIQUID_CHECK_OK(producer->Flush());
  LIQUID_CHECK_OK(pipeline.RunUntilAllIdle());
  return timer.ElapsedUs();
}

/// MR/DFS: N chained map jobs, each reading from and materializing to the
/// DFS, with per-job startup overhead.
int64_t RunMrPipeline(int stages) {
  dfs::DfsConfig dfs_config;
  dfs_config.num_datanodes = 3;
  dfs_config.replication = 2;
  dfs::DistributedFileSystem fs(dfs_config);
  SystemClock clock;
  mapreduce::MapReduceEngine engine(&fs, &clock);

  std::vector<mapreduce::KeyValue> input;
  for (int i = 0; i < kRecords; ++i) {
    input.push_back({"k" + std::to_string(i), "v"});
  }
  LIQUID_CHECK_OK(fs.WriteFile("/in/part0", mapreduce::MapReduceEngine::EncodeRecords(input)));

  std::vector<mapreduce::MapFn> chain;
  for (int i = 0; i < stages; ++i) {
    chain.push_back([](const mapreduce::KeyValue& kv) {
      return std::vector<mapreduce::KeyValue>{{kv.key, kv.value + "x"}};
    });
  }
  mapreduce::MrJobConfig config;
  config.name = "etl";
  config.startup_overhead_ms = kMrStartupMs;
  Stopwatch timer;
  LIQUID_CHECK_OK(engine.RunChain(config, "/in", "/out", chain));
  return timer.ElapsedUs();
}

struct StageResult {
  int stages;
  int64_t liquid_us;
  int64_t mr_us;
};

/// Runs E6 and returns the per-stage-count measurements (also printed as a
/// table). When `json_path` is non-null, the results are additionally written
/// there as a machine-readable JSON document for CI trend tracking.
void Run(const char* json_path) {
  std::vector<StageResult> results;
  Table table({"stages", "liquid_us", "mr_dfs_us", "mr/liquid",
               "liquid_us_per_stage", "mr_us_per_stage"});
  for (int stages : {1, 2, 4, 8}) {
    const int64_t liquid_us = RunLiquidPipeline(stages);
    const int64_t mr_us = RunMrPipeline(stages);
    results.push_back({stages, liquid_us, mr_us});
    table.AddRow(
        {std::to_string(stages), std::to_string(liquid_us),
         std::to_string(mr_us),
         Fmt(static_cast<double>(mr_us) / static_cast<double>(liquid_us), 1) +
             "x",
         std::to_string(liquid_us / stages), std::to_string(mr_us / stages)});
  }
  table.Print(
      "E6: end-to-end pipeline latency vs stage count (500 records; MR "
      "startup overhead scaled to 20ms/job)");

  if (json_path != nullptr) {
    std::ofstream out(json_path, std::ios::trunc);
    out << "{\n  \"benchmark\": \"pipeline_latency\",\n  \"records\": "
        << kRecords << ",\n  \"mr_startup_ms\": " << kMrStartupMs
        << ",\n  \"results\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const StageResult& r = results[i];
      out << "    {\"stages\": " << r.stages
          << ", \"liquid_us\": " << r.liquid_us << ", \"mr_dfs_us\": " << r.mr_us
          << ", \"speedup\": "
          << Fmt(static_cast<double>(r.mr_us) / static_cast<double>(r.liquid_us),
                 1)
          << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    if (!out) {
      std::fprintf(stderr, "warning: could not write %s\n", json_path);
    } else {
      std::printf("wrote %s\n", json_path);
    }
  }
}

/// Ablation: decoupling through the log means a slow consumer does not apply
/// backpressure to the producer stage (DESIGN.md §5).
void RunDecouplingAblation() {
  Liquid::Options options;
  options.cluster.num_brokers = 3;
  auto liquid = Liquid::Start(options);
  FeedOptions feed;
  feed.partitions = 1;
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("in", feed));
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("mid", feed));
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("out", feed));

  processing::Pipeline pipeline((*liquid)->cluster(), (*liquid)->offsets(),
                                (*liquid)->groups(), (*liquid)->state_disk());
  LIQUID_CHECK_OK(pipeline.AddMapStage(
      "fast", "in", "mid", [](const messaging::ConsumerRecord& e) {
        return std::optional<storage::Record>(e.record);
      }));
  LIQUID_CHECK_OK(pipeline.AddMapStage(
      "slow", "mid", "out", [](const messaging::ConsumerRecord& e) {
        storage::SpinFor(50 * 1000);  // 50us per record.
        return std::optional<storage::Record>(e.record);
      }));

  auto producer = (*liquid)->NewProducer();
  for (int i = 0; i < 2000; ++i) {
    LIQUID_CHECK_OK(producer->Send("in", storage::Record::KeyValue("k", "v")));
  }
  LIQUID_CHECK_OK(producer->Flush());

  // Upstream completes at full speed regardless of the slow downstream.
  Stopwatch fast_timer;
  while (*pipeline.stage(0)->RunOnce() > 0) {
  }
  LIQUID_CHECK_OK(pipeline.stage(0)->Commit());
  const int64_t fast_us = fast_timer.ElapsedUs();

  Stopwatch slow_timer;
  while (*pipeline.stage(1)->RunOnce() > 0) {
  }
  LIQUID_CHECK_OK(pipeline.stage(1)->Commit());
  const int64_t slow_us = slow_timer.ElapsedUs();

  Table table({"stage", "records", "wall_us", "blocked_by_downstream"});
  table.AddRow({"fast-upstream", "2000", std::to_string(fast_us), "no"});
  table.AddRow({"slow-downstream", "2000", std::to_string(slow_us), "-"});
  table.Print(
      "E6b: log-decoupled stages — upstream is never backpressured (§3)");
}

}  // namespace
}  // namespace liquid::core

int main(int argc, char** argv) {
  // --json[=path]: also emit the E6 results as JSON (default path
  // BENCH_pipeline_latency.json in the working directory).
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_pipeline_latency.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--json[=path]]\n", argv[0]);
      return 2;
    }
  }
  liquid::core::Run(json_path);
  liquid::core::RunDecouplingAblation();
  return 0;
}
