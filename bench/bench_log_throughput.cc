// Experiment E2 (§4.1): "read/write throughput remains constant independent
// of log size", plus the sparse-index ablation (DESIGN.md §5) and the
// concurrent-append legs for the reserve → encode → ordered-commit pipeline
// (encoding overlaps across appender threads; only the reservation counter
// and the final ordered write serialize).
//
// Paper shape to reproduce: append and tail-read throughput flat as the log
// grows from 10^4 to 10^6 records; sparse index keeps random seeks cheap
// without the dense index's memory cost.
//
// --json[=path] emits the google-benchmark JSON report (for
// scripts/bench_compare.py) in addition to the console table.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "storage/disk.h"
#include "storage/log.h"

namespace liquid::storage {
namespace {

std::vector<Record> MakeBatch(int n, Random* rng) {
  std::vector<Record> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(Record::KeyValue("key" + std::to_string(rng->Uniform(1000)),
                                   rng->Bytes(100)));
  }
  return out;
}

/// Append throughput at a given pre-existing log size.
void BM_AppendAtLogSize(benchmark::State& state) {
  const int64_t prefill = state.range(0);
  MemDisk disk;
  SystemClock clock;
  LogConfig config;
  config.segment_bytes = 4 << 20;
  auto log = Log::Open(&disk, nullptr, "l/", config, &clock);
  Random rng(42);
  // Pre-grow the log to the target size.
  auto fill = MakeBatch(1000, &rng);
  for (int64_t have = 0; have < prefill; have += 1000) {
    for (auto& r : fill) r.offset = -1;
    LIQUID_CHECK_OK((*log)->Append(&fill));
  }
  auto batch = MakeBatch(100, &rng);
  for (auto _ : state) {
    for (auto& r : batch) r.offset = -1;
    benchmark::DoNotOptimize((*log)->Append(&batch));
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.counters["log_records"] = static_cast<double>((*log)->end_offset());
}
BENCHMARK(BM_AppendAtLogSize)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMicrosecond);

/// Tail-read throughput (consumer following the head) at a given log size.
void BM_TailReadAtLogSize(benchmark::State& state) {
  const int64_t prefill = state.range(0);
  MemDisk disk;
  SystemClock clock;
  LogConfig config;
  config.segment_bytes = 4 << 20;
  auto log = Log::Open(&disk, nullptr, "l/", config, &clock);
  Random rng(42);
  auto fill = MakeBatch(1000, &rng);
  for (int64_t have = 0; have < prefill; have += 1000) {
    for (auto& r : fill) r.offset = -1;
    LIQUID_CHECK_OK((*log)->Append(&fill));
  }
  const int64_t end = (*log)->end_offset();
  std::vector<Record> out;
  for (auto _ : state) {
    out.clear();
    // Read the most recent ~100 records (the head of the log).
    benchmark::DoNotOptimize((*log)->Read(end - 100, 64 * 1024, &out));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_TailReadAtLogSize)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMicrosecond);

/// Random offset reads under different index granularities (ablation).
void BM_RandomReadIndexAblation(benchmark::State& state) {
  const size_t index_interval = static_cast<size_t>(state.range(0));
  MemDisk disk;
  SystemClock clock;
  LogConfig config;
  config.segment_bytes = 4 << 20;
  config.index_interval_bytes = index_interval;
  auto log = Log::Open(&disk, nullptr, "l/", config, &clock);
  Random rng(42);
  auto fill = MakeBatch(1000, &rng);
  for (int64_t have = 0; have < 200'000; have += 1000) {
    for (auto& r : fill) r.offset = -1;
    LIQUID_CHECK_OK((*log)->Append(&fill));
  }
  const int64_t end = (*log)->end_offset();
  std::vector<Record> out;
  Random pick(7);
  for (auto _ : state) {
    out.clear();
    const int64_t offset = static_cast<int64_t>(pick.Uniform(end));
    benchmark::DoNotOptimize((*log)->Read(offset, 4096, &out));
  }
  state.counters["index_interval"] = static_cast<double>(index_interval);
}
BENCHMARK(BM_RandomReadIndexAblation)
    ->Arg(0)            // Dense: every record indexed.
    ->Arg(4096)         // Default sparse.
    ->Arg(1 << 30)      // Effectively no index: scan from segment start.
    ->Unit(benchmark::kMicrosecond);

/// Throughput as a function of record size (payload scaling).
void BM_AppendRecordSize(benchmark::State& state) {
  const size_t value_bytes = static_cast<size_t>(state.range(0));
  MemDisk disk;
  SystemClock clock;
  auto log = Log::Open(&disk, nullptr, "l/", LogConfig{}, &clock);
  Random rng(42);
  std::vector<Record> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(Record::KeyValue("k", rng.Bytes(value_bytes)));
  }
  for (auto _ : state) {
    for (auto& r : batch) r.offset = -1;
    benchmark::DoNotOptimize((*log)->Append(&batch));
  }
  state.SetBytesProcessed(state.iterations() * 100 *
                          static_cast<int64_t>(value_bytes));
}
BENCHMARK(BM_AppendRecordSize)->Arg(100)->Arg(1024)->Arg(10240)->Unit(
    benchmark::kMicrosecond);

/// Concurrent appenders on ONE shared log: measures the append pipeline
/// directly. Offsets are reserved under a short lock, encoding runs with no
/// lock held, and writers commit in reservation order — so aggregate
/// throughput should grow with threads until the ordered write serializes.
void BM_AppendConcurrent(benchmark::State& state) {
  // Shared across the benchmark's threads; only thread 0 touches these
  // outside the timed loop (google-benchmark's documented setup pattern: a
  // barrier separates setup from every thread's first iteration).
  static std::unique_ptr<MemDisk> disk;
  static std::unique_ptr<Log> log;
  static SystemClock clock;
  if (state.thread_index() == 0) {
    disk = std::make_unique<MemDisk>();
    LogConfig config;
    config.segment_bytes = 4 << 20;
    log = std::move(Log::Open(disk.get(), nullptr, "l/", config, &clock))
              .value();
  }
  Random rng(42 + state.thread_index());
  auto batch = MakeBatch(100, &rng);
  for (auto _ : state) {
    for (auto& r : batch) r.offset = -1;
    benchmark::DoNotOptimize(log->AppendBatch(&batch));
  }
  state.SetItemsProcessed(state.iterations() * 100);
  if (state.thread_index() == 0) {
    state.counters["log_records"] = static_cast<double>(log->end_offset());
    log.reset();
    disk.reset();
  }
}
BENCHMARK(BM_AppendConcurrent)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace liquid::storage

int main(int argc, char** argv) {
  // Translate the repo-wide `--json[=path]` convention (see check.sh's bench
  // leg and bench_pipeline_latency) into google-benchmark's reporter flags.
  std::vector<char*> args;
  std::vector<std::string> extra;  // Owns storage for synthesized flags.
  const char* json_path = nullptr;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_log_throughput.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (json_path != nullptr) {
    extra.push_back(std::string("--benchmark_out=") + json_path);
    extra.push_back("--benchmark_out_format=json");
    for (std::string& flag : extra) args.push_back(flag.data());
  }
  int final_argc = static_cast<int>(args.size());
  benchmark::Initialize(&final_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(final_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
