// Experiment E11 (§2.2): Lambda vs Kappa vs Liquid on the same workload with
// a mid-run algorithm change requiring full reprocessing.
//
// Paper shape: Lambda pays two code paths and DFS materialization; Kappa has
// one code path but a transient double footprint; Liquid has one code path,
// reprocesses in place via the offset manager's rewindability, and
// materializes nothing extra.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "core/architectures.h"

namespace liquid::core {
namespace {

using bench::Stopwatch;
using bench::Table;

void Run() {
  Table table({"architecture", "code_paths", "records_processed",
               "bytes_materialized", "fresh_while_reprocessing",
               "correct_keys", "wall_us"});

  const int events = 5000;
  const int keys = 100;

  // Each pattern gets a fresh stack (independent runs).
  for (const char* which : {"lambda", "kappa", "liquid"}) {
    Liquid::Options options;
    options.cluster.num_brokers = 3;
    auto liquid = Liquid::Start(options);
    dfs::DfsConfig dfs_config;
    dfs_config.num_datanodes = 3;
    dfs_config.replication = 2;
    dfs::DistributedFileSystem fs(dfs_config);
    SystemClock clock;
    mapreduce::MapReduceEngine engine(&fs, &clock);
    ArchitectureComparison comparison(liquid->get(), events, keys);

    Stopwatch timer;
    Result<ArchitectureReport> report = Status::Internal("unset");
    if (std::string(which) == "lambda") {
      report = comparison.RunLambda(&fs, &engine);
    } else if (std::string(which) == "kappa") {
      report = comparison.RunKappa();
    } else {
      report = comparison.RunLiquid();
    }
    const int64_t wall_us = timer.ElapsedUs();
    if (!report.ok()) {
      std::printf("ERROR %s: %s\n", which, report.status().ToString().c_str());
      continue;
    }
    table.AddRow({report->architecture, std::to_string(report->code_paths),
                  std::to_string(report->records_processed),
                  std::to_string(report->bytes_materialized),
                  report->serving_fresh_during_reprocess ? "yes" : "no",
                  std::to_string(report->correct_keys) + "/" +
                      std::to_string(report->total_keys),
                  std::to_string(wall_us)});
  }
  table.Print(
      "E11: Lambda vs Kappa vs Liquid — same counting workload, algorithm "
      "change mid-run (5000 events, 100 keys)");
}

}  // namespace
}  // namespace liquid::core

int main() {
  liquid::core::Run();
  return 0;
}
