// Experiment E10 (§3.2 "ETL-as-a-service", §4.4): per-job resource isolation.
// A well-behaved job shares a node with a resource-hungry neighbour; with
// container isolation (CFS-style weighted fair scheduling) its throughput is
// protected, without isolation it is starved.
//
// Paper shape: "resource isolation, i.e. multiple algorithms can execute in
// parallel ... without affecting each others performance" (§5.1).

#include "bench_util.h"
#include "common/clock.h"
#include "isolation/scheduler.h"
#include "storage/disk.h"

namespace liquid::isolation {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

struct Outcome {
  int64_t victim_done = 0;
  int64_t noisy_done = 0;
  int64_t victim_last_position = 0;  // Dispatch index when victim finished.
};

Outcome RunScenario(bool isolation, double victim_share, double noisy_share) {
  SystemClock clock;
  FairScheduler scheduler(isolation, &clock);
  const int noisy = scheduler.RegisterContainer({"noisy-etl", noisy_share, 1 << 20});
  const int victim = scheduler.RegisterContainer({"victim-etl", victim_share, 1 << 20});

  // The noisy job floods the node with expensive items first.
  for (int i = 0; i < 200; ++i) {
    LIQUID_CHECK_OK(scheduler.Submit(noisy, [] { storage::SpinFor(300 * 1000); }));  // 300us.
  }
  // The victim submits a steady trickle of cheap items.
  for (int i = 0; i < 50; ++i) {
    LIQUID_CHECK_OK(scheduler.Submit(victim, [] { storage::SpinFor(20 * 1000); }));  // 20us.
  }

  Outcome outcome;
  int dispatched = 0;
  while (scheduler.RunOne()) {
    ++dispatched;
    if (scheduler.completed(victim) == 50 && outcome.victim_last_position == 0) {
      outcome.victim_last_position = dispatched;
    }
  }
  outcome.victim_done = scheduler.completed(victim);
  outcome.noisy_done = scheduler.completed(noisy);
  return outcome;
}

void Run() {
  Table table({"mode", "victim_share", "noisy_share",
               "victim_finished_after_n_dispatches", "total_dispatches"});
  {
    auto fifo = RunScenario(false, 1.0, 1.0);
    table.AddRow({"no isolation (FIFO)", "-", "-",
                  std::to_string(fifo.victim_last_position), "250"});
  }
  for (double victim_share : {1.0, 2.0}) {
    auto fair = RunScenario(true, victim_share, 1.0);
    table.AddRow({"containers (fair)", Fmt(victim_share, 1), "1.0",
                  std::to_string(fair.victim_last_position), "250"});
  }
  table.Print(
      "E10a: noisy neighbour — dispatches until the victim job's 50 items all "
      "completed (lower = better isolation)");

  // Throughput within a fixed time budget.
  Table budget({"mode", "victim_items_done_in_10ms", "noisy_items_done_in_10ms"});
  for (bool isolation : {false, true}) {
    SystemClock clock;
    FairScheduler scheduler(isolation, &clock);
    const int noisy = scheduler.RegisterContainer({"noisy", 1.0, 1 << 20});
    const int victim = scheduler.RegisterContainer({"victim", 1.0, 1 << 20});
    for (int i = 0; i < 10000; ++i) {
      LIQUID_CHECK_OK(scheduler.Submit(noisy, [] { storage::SpinFor(200 * 1000); }));
      LIQUID_CHECK_OK(scheduler.Submit(victim, [] { storage::SpinFor(20 * 1000); }));
    }
    auto completed = scheduler.RunUntilIdle(/*budget_ms=*/10);
    budget.AddRow({isolation ? "containers (fair)" : "no isolation (FIFO)",
                   std::to_string(completed[victim]),
                   std::to_string(completed[noisy])});
  }
  budget.Print(
      "E10b: items completed per job in a fixed 10ms node budget (victim "
      "items are 10x cheaper)");
}

}  // namespace
}  // namespace liquid::isolation

int main() {
  liquid::isolation::Run();
  return 0;
}
