// Ablation for the exactly-once extension (§4.3 "ongoing effort"): what does
// transactional publishing cost relative to at-least-once, and how does the
// transaction (commit-batch) size amortize it?
//
// Expected shape: per-record overhead shrinks as more records share one
// commit (markers + coordinator work amortize), approaching plain produce
// cost for large transactions — which is why Kafka's EOS is practical.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "messaging/broker.h"
#include "messaging/cluster.h"
#include "messaging/producer.h"
#include "messaging/transaction.h"

namespace liquid::messaging {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr int kRecords = 20'000;

struct Rig {
  SystemClock clock;
  std::unique_ptr<Cluster> cluster;
  storage::MemDisk offsets_disk;
  std::unique_ptr<OffsetManager> offsets;
  std::unique_ptr<TransactionCoordinator> txn;
};

std::unique_ptr<Rig> BuildRig() {
  auto rig = std::make_unique<Rig>();
  ClusterConfig config;
  config.num_brokers = 3;
  rig->cluster = std::make_unique<Cluster>(config, &rig->clock);
  LIQUID_CHECK_OK(rig->cluster->Start());
  TopicConfig topic;
  topic.partitions = 2;
  topic.replication_factor = 2;
  LIQUID_CHECK_OK(rig->cluster->CreateTopic("t", topic));
  rig->offsets =
      std::move(OffsetManager::Open(&rig->offsets_disk, "o/", &rig->clock))
          .value();
  rig->txn = std::make_unique<TransactionCoordinator>(rig->cluster.get(),
                                                      rig->offsets.get());
  return rig;
}

double PlainThroughput(Rig* rig) {
  ProducerConfig config;
  config.batch_max_records = 128;
  Producer producer(rig->cluster.get(), config);
  Stopwatch timer;
  for (int i = 0; i < kRecords; ++i) {
    LIQUID_CHECK_OK(producer.Send("t", storage::Record::KeyValue("k", std::string(100, 'v'))));
  }
  LIQUID_CHECK_OK(producer.Flush());
  return kRecords * 1e6 / static_cast<double>(timer.ElapsedUs());
}

double TransactionalThroughput(Rig* rig, int records_per_txn) {
  ProducerConfig config;
  config.batch_max_records = 128;
  config.transactional_id = "bench-" + std::to_string(records_per_txn);
  Producer producer(rig->cluster.get(), config);
  LIQUID_CHECK_OK(producer.InitTransactions(rig->txn.get()));
  Stopwatch timer;
  int in_txn = 0;
  LIQUID_CHECK_OK(producer.BeginTransaction());
  for (int i = 0; i < kRecords; ++i) {
    LIQUID_CHECK_OK(producer.Send("t", storage::Record::KeyValue("k", std::string(100, 'v'))));
    if (++in_txn == records_per_txn) {
      LIQUID_CHECK_OK(producer.CommitTransaction());
      LIQUID_CHECK_OK(producer.BeginTransaction());
      in_txn = 0;
    }
  }
  LIQUID_CHECK_OK(producer.CommitTransaction());
  return kRecords * 1e6 / static_cast<double>(timer.ElapsedUs());
}

void Run() {
  Table table({"mode", "records/txn", "records/s", "overhead_vs_plain"});
  auto rig = BuildRig();
  const double plain = PlainThroughput(rig.get());
  table.AddRow({"at-least-once", "-", Fmt(plain / 1000, 1) + "k/s", "1.00x"});
  for (int per_txn : {10, 100, 1000, 10000}) {
    auto txn_rig = BuildRig();
    const double rate = TransactionalThroughput(txn_rig.get(), per_txn);
    table.AddRow({"transactional", std::to_string(per_txn),
                  Fmt(rate / 1000, 1) + "k/s",
                  Fmt(plain / rate, 2) + "x"});
  }
  table.Print(
      "E7c: exactly-once publishing overhead vs transaction size (20k "
      "records, 2 partitions, rf=2)");
}

}  // namespace
}  // namespace liquid::messaging

int main() {
  liquid::messaging::Run();
  return 0;
}
