// Experiments E13/E14 (§5.1): site-speed monitoring and call-graph assembly.
// Anomaly-detection latency nearline (continuous job over the feed) vs batch
// (periodic MR job over DFS dumps): "back-end applications can detect
// anomalies within minutes as opposed to hours" / "identifying potential
// problems within seconds rather than hours".
//
// Paper shape: nearline detection latency ~ poll cadence; batch detection
// latency ~ batch interval (dominant) + job runtime, i.e. orders of magnitude
// larger and growing with the configured interval.

#include <cstdlib>
#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "core/liquid.h"
#include "mapreduce/mapreduce.h"
#include "workload/generators.h"

namespace liquid::core {
namespace {

using bench::Fmt;
using bench::Stopwatch;
using bench::Table;

constexpr int64_t kAnomalyThresholdMs = 2000;  // Avg load above this = alert.

/// Nearline: a stateful job watches per-CDN averages; detection time is the
/// (simulated) event-time gap between the anomaly starting and the average
/// crossing the threshold.
int64_t RunNearline(SimulatedClock* clock) {
  Liquid::Options options;
  options.cluster.num_brokers = 3;
  options.clock = clock;
  auto liquid = Liquid::Start(options);
  FeedOptions feed;
  feed.partitions = 1;
  LIQUID_CHECK_OK((*liquid)->CreateSourceFeed("rum", feed));

  workload::RumEventGenerator::Options gen;
  gen.anomaly_start_event = 500;
  gen.anomaly_end_event = 1 << 30;
  gen.anomalous_cdn = 1;
  gen.anomaly_load_ms = 9000;
  workload::RumEventGenerator generator(gen);

  // Detector task: windowed average per CDN (resets each poll window).
  struct Detector : processing::StreamTask {
    Status Init(processing::TaskContext* context) override {
      store = context->GetStore("agg");
      return Status::OK();
    }
    Status Process(const messaging::ConsumerRecord& envelope,
                   processing::MessageCollector*,
                   processing::TaskCoordinator*) override {
      auto fields = workload::ParseEvent(envelope.record.value);
      const std::string& cdn = fields["cdn"];
      const int64_t load = std::strtoll(fields["load_ms"].c_str(), nullptr, 10);
      auto current = store->Get(cdn);
      int64_t sum = 0, count = 0;
      if (current.ok()) {
        auto parts = workload::ParseEvent(*current);
        sum = std::strtoll(parts["sum"].c_str(), nullptr, 10);
        count = std::strtoll(parts["count"].c_str(), nullptr, 10);
      }
      sum += load;
      ++count;
      LIQUID_CHECK_OK(store->Put(cdn, workload::EncodeEvent(
                          {{"sum", std::to_string(sum)},
                           {"count", std::to_string(count)}})));
      if (count >= 20 && sum / count > kAnomalyThresholdMs &&
          detected_at_ms < 0) {
        detected_at_ms = envelope.record.timestamp_ms;
      }
      return Status::OK();
    }
    processing::KeyValueStore* store = nullptr;
    int64_t detected_at_ms = -1;
  };

  Detector* detector_ptr = nullptr;
  processing::JobConfig config;
  config.name = "rum-detector";
  config.inputs = {"rum"};
  config.stores = {{"agg", processing::StoreConfig::Kind::kInMemory, false}};
  auto job = (*liquid)->SubmitJob(config, [&detector_ptr] {
    auto task = std::make_unique<Detector>();
    detector_ptr = task.get();
    return task;
  });

  auto producer = (*liquid)->NewProducer();
  int64_t anomaly_start_ms = -1;
  int events = 0;
  // Events arrive at 1 per simulated ms; the job polls every 50 events.
  while (events < 3000 &&
         (detector_ptr == nullptr || detector_ptr->detected_at_ms < 0)) {
    for (int i = 0; i < 50; ++i) {
      clock->AdvanceMs(1);
      auto record = generator.Next(clock->NowMs());
      if (events == 500) anomaly_start_ms = clock->NowMs();
      LIQUID_CHECK_OK(producer->Send("rum", std::move(record)));
      ++events;
    }
    LIQUID_CHECK_OK(producer->Flush());
    LIQUID_CHECK_OK((*job)->RunOnce());
  }
  if (detector_ptr == nullptr || detector_ptr->detected_at_ms < 0) return -1;
  return detector_ptr->detected_at_ms - anomaly_start_ms;
}

/// Batch: events accumulate in DFS dumps; every `interval_ms` of simulated
/// time an MR job computes per-CDN averages. Detection latency is dominated
/// by the batch interval.
int64_t RunBatch(SimulatedClock* clock, int64_t interval_ms) {
  dfs::DfsConfig dfs_config;
  dfs_config.num_datanodes = 3;
  dfs_config.replication = 1;
  dfs::DistributedFileSystem fs(dfs_config);
  mapreduce::MapReduceEngine engine(&fs, clock);

  workload::RumEventGenerator::Options gen;
  gen.anomaly_start_event = 500;
  gen.anomaly_end_event = 1 << 30;
  gen.anomalous_cdn = 1;
  gen.anomaly_load_ms = 9000;
  workload::RumEventGenerator generator(gen);

  int64_t anomaly_start_ms = -1;
  int events = 0;
  int dump = 0;
  std::vector<mapreduce::KeyValue> buffer;
  for (int batch = 0; batch < 20; ++batch) {
    // One interval of event arrival (1 event per simulated ms).
    for (int64_t t = 0; t < interval_ms; ++t) {
      clock->AdvanceMs(1);
      auto record = generator.Next(clock->NowMs());
      if (events == 500) anomaly_start_ms = clock->NowMs();
      buffer.push_back({record.key, record.value});
      ++events;
    }
    LIQUID_CHECK_OK(fs.WriteFile("/rum/in/dump" + std::to_string(dump++),
                 mapreduce::MapReduceEngine::EncodeRecords(buffer)));
    buffer.clear();

    // The periodic batch job runs over ALL accumulated data.
    mapreduce::MrJobConfig job;
    job.name = "rum-batch" + std::to_string(batch);
    job.startup_overhead_ms = 100;  // Scheduling + startup, simulated time.
    auto stats = engine.RunJob(
        job, "/rum/in", "/rum/out" + std::to_string(batch),
        [](const mapreduce::KeyValue& kv) {
          auto fields = workload::ParseEvent(kv.value);
          return std::vector<mapreduce::KeyValue>{
              {fields["cdn"], fields["load_ms"]}};
        },
        [](const std::string&, const std::vector<std::string>& values) {
          int64_t sum = 0;
          for (const auto& v : values) sum += std::strtoll(v.c_str(), nullptr, 10);
          return std::to_string(sum / static_cast<int64_t>(values.size()));
        });
    if (!stats.ok()) return -1;
    // Check the output for an anomaly.
    for (const auto& part : fs.ListFiles("/rum/out" + std::to_string(batch))) {
      auto data = fs.ReadFile(part);
      for (const auto& kv : mapreduce::MapReduceEngine::DecodeRecords(*data)) {
        if (std::strtoll(kv.value.c_str(), nullptr, 10) > kAnomalyThresholdMs &&
            anomaly_start_ms >= 0) {
          return clock->NowMs() - anomaly_start_ms;
        }
      }
    }
  }
  return -1;
}

void Run() {
  Table table({"approach", "batch_interval_ms", "detection_latency_ms"});
  {
    SimulatedClock clock(0);
    table.AddRow({"liquid nearline", "-", std::to_string(RunNearline(&clock))});
  }
  for (int64_t interval : {1000, 5000, 20000}) {
    SimulatedClock clock(0);
    table.AddRow({"MR/DFS batch", std::to_string(interval),
                  std::to_string(RunBatch(&clock, interval))});
  }
  table.Print(
      "E13: RUM anomaly detection latency (simulated event time; anomaly "
      "starts at event 500, 1 event/ms)");
}

}  // namespace
}  // namespace liquid::core

int main() {
  liquid::core::Run();
  return 0;
}
