/// Fuzz target: varint / fixed-width / length-prefixed codecs
/// (common/coding.cc) — the primitives every other decode surface is built
/// on. Decoders must reject truncated and overflowing input with a Status,
/// and every accepted value must round-trip canonically.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/nodiscard.h"
#include "common/slice.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const liquid::Slice input(reinterpret_cast<const char*>(data), size);

  {
    liquid::Slice cursor = input;
    uint64_t v = 0;
    if (liquid::GetVarint64(&cursor, &v).ok()) {
      std::string encoded;
      liquid::PutVarint64(&encoded, v);
      liquid::Slice again(encoded);
      uint64_t v2 = 0;
      if (!liquid::GetVarint64(&again, &v2).ok() || v2 != v ||
          !again.empty() ||
          static_cast<size_t>(liquid::VarintLength(v)) != encoded.size()) {
        __builtin_trap();
      }
    }
  }
  {
    liquid::Slice cursor = input;
    uint32_t v = 0;
    if (liquid::GetVarint32(&cursor, &v).ok()) {
      std::string encoded;
      liquid::PutVarint32(&encoded, v);
      liquid::Slice again(encoded);
      uint32_t v2 = 0;
      if (!liquid::GetVarint32(&again, &v2).ok() || v2 != v) __builtin_trap();
    }
  }
  {
    // Chained length-prefixed slices: must consume forward or stop, never
    // loop or overrun.
    liquid::Slice cursor = input;
    liquid::Slice piece;
    while (liquid::GetLengthPrefixed(&cursor, &piece).ok()) {
    }
  }
  {
    liquid::Slice cursor = input;
    uint32_t f32 = 0;
    uint64_t f64 = 0;
    LIQUID_IGNORE_ERROR(liquid::GetFixed32(&cursor, &f32));
    LIQUID_IGNORE_ERROR(liquid::GetFixed64(&cursor, &f64));
  }
  return 0;
}
