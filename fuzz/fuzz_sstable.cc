/// Fuzz target: SSTable reader (kv/sstable.cc).
///
/// The input bytes are treated as a complete table file image: footer, index
/// and data blocks are all attacker-controlled. Open must either produce a
/// readable table or return Corruption; iteration and point lookups over a
/// table that did open must terminate without crashing.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/nodiscard.h"
#include "common/slice.h"
#include "kv/sstable.h"
#include "storage/disk.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  liquid::storage::MemDisk disk;
  auto file = disk.OpenOrCreate("fuzz.tbl");
  if (!file.ok()) return 0;
  if (!(*file)
           ->Append(liquid::Slice(reinterpret_cast<const char*>(data), size))
           .ok()) {
    return 0;
  }

  auto table = liquid::kv::SSTable::Open(&disk, "fuzz.tbl");
  if (!table.ok()) return 0;  // Corruption is the expected rejection path.

  auto it = (*table)->NewIterator();
  size_t visited = 0;
  // Bound the walk: the index can legitimately describe many entries, and the
  // harness only needs to prove the reader terminates per step.
  for (; it.Valid() && visited < 4096; it.Next(), ++visited) {
    LIQUID_IGNORE_ERROR((*table)->Get(it.entry().key));
  }
  LIQUID_IGNORE_ERROR((*table)->Get("missing-key"));
  return 0;
}
