/// Fuzz target: commit-log record decode (storage/record.cc).
///
/// The record frame is the broker's untrusted ingest surface: fetch responses
/// and on-disk segments both run through DecodeRecord/DecodeRecords. Any
/// input must either decode or return a Status — never crash, never read out
/// of bounds. Records that do decode must round-trip through EncodeRecord.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/nodiscard.h"
#include "common/slice.h"
#include "storage/record.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  liquid::Slice input(reinterpret_cast<const char*>(data), size);
  liquid::storage::Record record;
  while (true) {
    const liquid::Status st = liquid::storage::DecodeRecord(&input, &record);
    if (!st.ok()) break;
    // Round-trip invariant: a frame the decoder accepted re-encodes to a
    // frame that decodes back to the same logical record.
    std::string encoded;
    liquid::storage::EncodeRecord(record, &encoded);
    liquid::Slice again(encoded);
    liquid::storage::Record copy;
    // Trace fields round-trip too. A frame with the traced attribute bit set
    // but trace_id == 0 decodes to a logically untraced record, which
    // re-encodes WITHOUT the trace block — that is still the same logical
    // record, so comparing the decoded fields (not the bytes) is correct.
    if (!liquid::storage::DecodeRecord(&again, &copy).ok() ||
        copy.offset != record.offset || copy.key != record.key ||
        copy.value != record.value || copy.is_tombstone != record.is_tombstone ||
        copy.has_key != record.has_key || copy.is_control != record.is_control ||
        copy.trace_id != record.trace_id ||
        (record.traced() && (copy.span_id != record.span_id ||
                             copy.ingest_us != record.ingest_us))) {
      __builtin_trap();
    }
  }

  // The batch decoder must stop cleanly at a torn tail, whatever the bytes.
  std::vector<liquid::storage::Record> records;
  LIQUID_IGNORE_ERROR(liquid::storage::DecodeRecords(
      liquid::Slice(reinterpret_cast<const char*>(data), size), &records));
  return 0;
}
