/// Deterministic driver for the fuzz targets on toolchains without libFuzzer
/// (GCC-only boxes). Links against the same LLVMFuzzerTestOneInput entry
/// point the libFuzzer build uses.
///
/// Usage: <fuzzer> [-runs=N] <corpus file or dir>...
///
/// Every corpus input is replayed once; then N additional runs execute
/// deterministic mutations (bit flips, byte sets, truncations, extensions) of
/// the seeds using a fixed-seed xorshift PRNG, so a given binary + corpus
/// always exercises the same inputs — suitable for a CI smoke gate.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t XorShift(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void RunOne(const std::vector<uint8_t>& bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "-runs=", 6) == 0) {
      runs = std::strtol(argv[i] + 6, nullptr, 10);
    } else if (argv[i][0] == '-') {
      // Ignore unknown libFuzzer-style flags so invocations written for the
      // clang build still work here.
    } else {
      paths.push_back(argv[i]);
    }
  }

  std::vector<std::vector<uint8_t>> seeds;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<std::string> files;
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
      std::sort(files.begin(), files.end());  // Directory order is not stable.
      for (const auto& file : files) seeds.push_back(ReadFile(file));
    } else {
      seeds.push_back(ReadFile(path));
    }
  }

  for (const auto& seed : seeds) RunOne(seed);
  std::fprintf(stderr, "replayed %zu corpus inputs\n", seeds.size());

  if (runs > 0 && !seeds.empty()) {
    uint64_t state = 0x9e3779b97f4a7c15ull;
    for (long i = 0; i < runs; ++i) {
      std::vector<uint8_t> input = seeds[static_cast<size_t>(i) % seeds.size()];
      switch (XorShift(&state) % 4) {
        case 0:  // Flip one bit.
          if (!input.empty()) {
            input[XorShift(&state) % input.size()] ^=
                static_cast<uint8_t>(1u << (XorShift(&state) % 8));
          }
          break;
        case 1:  // Overwrite one byte.
          if (!input.empty()) {
            input[XorShift(&state) % input.size()] =
                static_cast<uint8_t>(XorShift(&state));
          }
          break;
        case 2:  // Truncate.
          if (!input.empty()) input.resize(XorShift(&state) % input.size());
          break;
        case 3:  // Extend with pseudo-random bytes.
          for (uint64_t n = XorShift(&state) % 16; n > 0; --n) {
            input.push_back(static_cast<uint8_t>(XorShift(&state)));
          }
          break;
      }
      RunOne(input);
    }
    std::fprintf(stderr, "executed %ld deterministic mutation runs\n", runs);
  }
  return 0;
}
