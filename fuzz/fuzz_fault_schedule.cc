/// Fuzz target: fault-schedule parser (common/fault.cc).
///
/// Chaos schedules are operator-written text files fed straight into
/// FaultSchedule::Parse by tests, bench_chaos_soak and the check.sh
/// chaos-smoke leg. The parser must reject malformed input with a Status
/// (never crash), and any schedule that parses must survive a
/// Serialize -> Parse round trip unchanged — Serialize() is documented as
/// the canonical form.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/fault.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto parsed = liquid::FaultSchedule::Parse(text);
  if (!parsed.ok()) return 0;

  auto again = liquid::FaultSchedule::Parse(parsed->Serialize());
  if (!again.ok() || !(*again == *parsed)) __builtin_trap();
  return 0;
}
