/// Fuzz target: Properties config parser (common/properties.cc).
///
/// Config files are operator-supplied text; the parser must reject malformed
/// lines with a Status and accept the rest. A bag that parsed must survive a
/// Serialize -> Parse round trip unchanged.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/properties.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  auto parsed = liquid::Properties::Parse(text);
  if (!parsed.ok()) return 0;

  auto again = liquid::Properties::Parse(parsed->Serialize());
  if (!again.ok() || again->values() != parsed->values()) __builtin_trap();
  return 0;
}
