/// Writes the checked-in seed corpora for the fuzz targets, using the real
/// encoders so seeds start on the happy path and mutations explore the
/// boundary. Run from the repo root:
///
///   build/fuzz-build/gen_seeds fuzz/corpus
///
/// Output is deterministic; re-running refreshes the corpora in place.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/status.h"
#include "kv/sstable.h"
#include "storage/disk.h"
#include "storage/record.h"

namespace {

void WriteSeed(const std::string& dir, const std::string& name,
               const std::string& bytes) {
  std::filesystem::create_directories(dir);
  std::ofstream out(dir + "/" + name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "fuzz/corpus";

  // --- record_decode: valid single records and a small batch. ---
  {
    std::string one;
    liquid::storage::EncodeRecord(
        liquid::storage::Record::KeyValue("user-42", "clicked", 1700000000000),
        &one);
    WriteSeed(root + "/record_decode", "keyvalue", one);

    std::string tombstone;
    liquid::storage::EncodeRecord(liquid::storage::Record::Tombstone("user-42"),
                                  &tombstone);
    WriteSeed(root + "/record_decode", "tombstone", tombstone);

    std::string batch;
    for (int i = 0; i < 3; ++i) {
      liquid::storage::Record r = liquid::storage::Record::KeyValue(
          "k" + std::to_string(i), std::string(32, 'v'));
      r.offset = i;
      r.producer_id = 7;
      r.sequence = i;
      r.leader_epoch = 2;
      liquid::storage::EncodeRecord(r, &batch);
    }
    WriteSeed(root + "/record_decode", "batch", batch);

    std::string control;
    liquid::storage::EncodeRecord(
        liquid::storage::Record::ControlMarker(7, /*committed=*/true), &control);
    WriteSeed(root + "/record_decode", "control", control);

    // A traced record: the attributes byte has the trace bit set and the
    // header carries the {trace_id, span_id, ingest_us} block.
    std::string traced;
    liquid::storage::Record tr =
        liquid::storage::Record::KeyValue("user-42", "traced", 1700000000000);
    tr.trace_id = 0x1122334455667788ull;
    tr.span_id = 42;
    tr.ingest_us = 1700000000000123;
    liquid::storage::EncodeRecord(tr, &traced);
    WriteSeed(root + "/record_decode", "traced", traced);
  }

  // --- coding: varints, length-prefixed chains, fixed-width values. ---
  {
    std::string varints;
    for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                       0xffffffffull, 0xffffffffffffffffull}) {
      liquid::PutVarint64(&varints, v);
    }
    WriteSeed(root + "/coding", "varints", varints);

    std::string prefixed;
    liquid::PutLengthPrefixed(&prefixed, "short");
    liquid::PutLengthPrefixed(&prefixed, "");
    liquid::PutLengthPrefixed(&prefixed, std::string(200, 'x'));
    WriteSeed(root + "/coding", "length_prefixed", prefixed);

    std::string fixed;
    liquid::PutFixed32(&fixed, 0xdeadbeefu);
    liquid::PutFixed64(&fixed, 0x0123456789abcdefull);
    WriteSeed(root + "/coding", "fixed", fixed);
  }

  // --- sstable: a complete small table file image. ---
  {
    liquid::storage::MemDisk disk;
    std::vector<liquid::kv::Entry> entries;
    for (int i = 0; i < 8; ++i) {
      liquid::kv::Entry entry;
      entry.key = "key" + std::to_string(i);
      entry.value = "value" + std::to_string(i);
      entry.sequence = static_cast<uint64_t>(i + 1);
      entry.type = i == 3 ? liquid::kv::EntryType::kDelete
                          : liquid::kv::EntryType::kPut;
      entries.push_back(entry);
    }
    liquid::kv::SSTable::Options options;
    options.block_size = 64;  // Several blocks even for a tiny table.
    LIQUID_CHECK_OK(
        liquid::kv::SSTable::Write(&disk, "seed.tbl", entries, options));
    auto file = disk.OpenOrCreate("seed.tbl");
    LIQUID_CHECK_OK(file.status());
    std::string image;
    LIQUID_CHECK_OK((*file)->ReadAt(0, (*file)->Size(), &image));
    WriteSeed(root + "/sstable", "small_table", image);
  }

  // --- properties: representative config text. ---
  {
    WriteSeed(root + "/properties", "broker",
              "# broker config\n"
              "broker.id = 1\n"
              "log.dirs=/var/liquid/data\n"
              "log.retention.ms=604800000\n"
              "unclean.leader.election=false\n"
              "\n"
              "! trailing comment\n");
    WriteSeed(root + "/properties", "edge_cases",
              "empty.value=\n"
              "spaces  =  trimmed  \n"
              "equals.in.value=a=b=c\n");
  }

  // --- fault_schedule: representative chaos schedules. ---
  {
    WriteSeed(root + "/fault_schedule", "soak",
              "# chaos soak schedule\n"
              "seed = 42\n"
              "fault.log.sync.before.action = fail(IOError)\n"
              "fault.log.sync.before.after = 100\n"
              "fault.log.sync.before.count = 3\n"
              "fault.broker.produce.before_append.action = delay(2ms)\n"
              "fault.broker.produce.before_append.probability = 0.05\n"
              "fault.broker.replicate.before_append.action = crash\n"
              "fault.broker.replicate.before_append.every = 50\n");
    WriteSeed(root + "/fault_schedule", "latency",
              "fault.broker.fetch.before_read.action = delay(750us)\n"
              "fault.coord.election.acquire.action = fail(Unavailable)\n"
              "fault.coord.election.acquire.count = 2\n");
    WriteSeed(root + "/fault_schedule", "minimal",
              "fault.offsets.commit.before_append.action = crash\n");
  }

  std::printf("seed corpora written under %s\n", root.c_str());
  return 0;
}
